"""Rendering of experiment results: aligned text tables and JSON.

The benchmarks print each figure as an aligned table — one row per
x-position, one column per series — mirroring the series the paper plots.
:func:`result_to_dict` produces the machine-readable form written to
``BENCH_<name>.json`` so the perf trajectory is tracked across PRs.
"""

from __future__ import annotations

from statistics import mean

from repro.bench.harness import ExperimentResult


def format_result(result: ExperimentResult, precision: int = 1) -> str:
    """Render an :class:`ExperimentResult` as an aligned text table."""
    series_names = sorted(result.series)
    xs = result.xs()
    by_position: dict[str, dict[float, float]] = {
        name: {point.x: point.mean_reads for point in points}
        for name, points in result.series.items()
    }
    header = [result.x_label] + series_names
    rows = [header]
    for x in xs:
        row = [_format_x(x)]
        for name in series_names:
            value = by_position[name].get(x)
            row.append("-" if value is None else f"{value:.{precision}f}")
        rows.append(row)
    widths = [
        max(len(row[col]) for row in rows) for col in range(len(header))
    ]
    lines = [f"== {result.name} ==", f"(y: {result.y_label})"]
    for index, row in enumerate(rows):
        lines.append(
            "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    footer = _hit_rate_footer(result)
    if footer:
        lines.append(footer)
    fault_footer = _fault_footer(result)
    if fault_footer:
        lines.append(fault_footer)
    return "\n".join(lines)


def _fault_footer(result: ExperimentResult) -> str:
    """Per-series fault-telemetry line, or "" when no faults occurred.

    Only renders under active fault injection, so zero-fault runs produce
    byte-identical reports to builds that predate the counters.
    """
    parts = []
    for name in sorted(result.series):
        points = result.series[name]
        injected = sum(p.total_faults_injected for p in points)
        failures = sum(p.total_checksum_failures for p in points)
        retries = sum(p.total_retries for p in points)
        if not (injected or failures or retries):
            continue
        parts.append(
            f"{name}: {injected} injected, {failures} checksum failures, "
            f"{retries} retries"
        )
    if not parts:
        return ""
    return "(faults) " + "; ".join(parts)


def _hit_rate_footer(result: ExperimentResult) -> str:
    """Per-series cache telemetry line, or "" when none was recorded.

    Hit rates are wall-clock telemetry, not part of the simulated I/O
    model, so the footer only appears when some point carries them
    (results built before the counters existed render unchanged).
    """
    parts = []
    for name in sorted(result.series):
        points = result.series[name]
        if not any(
            p.mean_pool_hit_rate or p.mean_decoded_hit_rate for p in points
        ):
            continue
        pool_rate = mean(p.mean_pool_hit_rate for p in points)
        decoded_rate = mean(p.mean_decoded_hit_rate for p in points)
        parts.append(
            f"{name}: pool {pool_rate:.0%}, decoded {decoded_rate:.0%}"
        )
    if not parts:
        return ""
    return "(cache hit rates) " + "; ".join(parts)


def _format_x(x: float) -> str:
    if x == int(x) and abs(x) >= 1:
        return str(int(x))
    return f"{x:g}"


def result_to_dict(result: ExperimentResult) -> dict:
    """JSON-serializable form of an :class:`ExperimentResult`.

    The ``x`` / ``mean_reads`` / ``mean_reads_by_tag`` / ``num_queries`` /
    ``mean_result_size`` fields are deterministic (identical cache on/off
    and across ``--jobs`` counts); the hit-rate fields are wall-clock
    telemetry and legitimately vary with cache configuration.  Fault
    telemetry and join probe stats are emitted only when present, so
    zero-fault select runs serialize exactly as before.
    """

    def point_dict(point) -> dict:
        entry = {
            "x": point.x,
            "mean_reads": point.mean_reads,
            "num_queries": point.num_queries,
            "mean_result_size": point.mean_result_size,
            "mean_reads_by_tag": dict(sorted(point.mean_reads_by_tag.items())),
            "mean_pool_hit_rate": point.mean_pool_hit_rate,
            "mean_decoded_hit_rate": point.mean_decoded_hit_rate,
        }
        if (
            point.total_faults_injected
            or point.total_checksum_failures
            or point.total_retries
        ):
            entry["total_checksum_failures"] = point.total_checksum_failures
            entry["total_retries"] = point.total_retries
            entry["total_faults_injected"] = point.total_faults_injected
        if point.probe_stats:
            entry["probe_stats"] = dict(sorted(point.probe_stats.items()))
        return entry

    return {
        "name": result.name,
        "x_label": result.x_label,
        "y_label": result.y_label,
        "series": {
            name: [
                point_dict(point)
                for point in sorted(points, key=lambda p: p.x)
            ]
            for name, points in sorted(result.series.items())
        },
    }


def comparison_summary(
    result: ExperimentResult, better: str, worse: str
) -> str:
    """One-line trend summary: mean ratio of ``worse`` to ``better``."""
    better_values = result.series_values(better)
    worse_values = result.series_values(worse)
    ratios = [
        w / b for b, w in zip(better_values, worse_values) if b > 0
    ]
    if not ratios:
        return f"{better} vs {worse}: no comparable points"
    mean_ratio = sum(ratios) / len(ratios)
    return (
        f"{worse} averages {mean_ratio:.2f}x the I/O of {better} "
        f"across {len(ratios)} points"
    )
