"""Text rendering of experiment results.

The benchmarks print each figure as an aligned table — one row per
x-position, one column per series — mirroring the series the paper plots.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult


def format_result(result: ExperimentResult, precision: int = 1) -> str:
    """Render an :class:`ExperimentResult` as an aligned text table."""
    series_names = sorted(result.series)
    xs = result.xs()
    by_position: dict[str, dict[float, float]] = {
        name: {point.x: point.mean_reads for point in points}
        for name, points in result.series.items()
    }
    header = [result.x_label] + series_names
    rows = [header]
    for x in xs:
        row = [_format_x(x)]
        for name in series_names:
            value = by_position[name].get(x)
            row.append("-" if value is None else f"{value:.{precision}f}")
        rows.append(row)
    widths = [
        max(len(row[col]) for row in rows) for col in range(len(header))
    ]
    lines = [f"== {result.name} ==", f"(y: {result.y_label})"]
    for index, row in enumerate(rows):
        lines.append(
            "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def _format_x(x: float) -> str:
    if x == int(x) and abs(x) >= 1:
        return str(int(x))
    return f"{x:g}"


def comparison_summary(
    result: ExperimentResult, better: str, worse: str
) -> str:
    """One-line trend summary: mean ratio of ``worse`` to ``better``."""
    better_values = result.series_values(better)
    worse_values = result.series_values(worse)
    ratios = [
        w / b for b, w in zip(better_values, worse_values) if b > 0
    ]
    if not ratios:
        return f"{better} vs {worse}: no comparable points"
    mean_ratio = sum(ratios) / len(ratios)
    return (
        f"{worse} averages {mean_ratio:.2f}x the I/O of {better} "
        f"across {len(ratios)} points"
    )
