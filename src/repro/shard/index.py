"""A hash-sharded index: one full structure per tid slice.

:class:`ShardedIndex` partitions a relation with
:func:`repro.shard.partition.partition` and builds one complete index
— inverted index or PDR-tree — over each slice, each on its own
disk.  Because the slices preserve global tids (see
:class:`~repro.shard.partition.ShardSlice`), a shard's answers carry
globally meaningful tids and merge without translation; with one
shard the built structure is byte-identical to a single-node build.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.exceptions import QueryError
from repro.core.relation import UncertainRelation
from repro.invindex.index import ProbabilisticInvertedIndex
from repro.pdrtree.tree import PDRTree, PDRTreeConfig
from repro.shard.partition import ShardSlice, partition
from repro.sketch import SketchParams

#: Index structures a shard may hold.
FAMILIES = ("inverted", "pdr")


def build_shard_index(
    slice_: ShardSlice,
    family: str,
    pdr_config: PDRTreeConfig | None = None,
    sketch_params: SketchParams | None = None,
) -> ProbabilisticInvertedIndex | PDRTree:
    """Build one shard's index over its slice (on a fresh disk).

    Module-level so process-pool workers can rebuild a shipped slice
    without importing :class:`ShardedIndex` state.  ``sketch_params``
    additionally builds the shard's similarity sketch; because all
    sketch hashing is splitmix64-keyed (never Python's salted
    ``hash()``), workers rebuild bit-identical sketches from the same
    slice and params.
    """
    if family == "inverted":
        index = ProbabilisticInvertedIndex(len(slice_.domain))
        index.build(slice_)
    elif family == "pdr":
        index = PDRTree(len(slice_.domain), config=pdr_config)
        index.build(slice_)
    else:
        raise QueryError(
            f"family must be one of {FAMILIES}, got {family!r}"
        )
    if sketch_params is not None:
        index.build_sketch(sketch_params)
    return index


@dataclass
class Shard:
    """One shard: its slice (kept for worker shipping) and its index."""

    shard_id: int
    slice: ShardSlice
    index: ProbabilisticInvertedIndex | PDRTree


class ShardedIndex:
    """N per-slice indexes behind one handle.

    Querying goes through a :class:`~repro.shard.coordinator.ShardCoordinator`
    over a transport; this class only owns construction and the
    per-shard structures.
    """

    def __init__(
        self,
        shards: list[Shard],
        family: str,
        strategy: str | None = None,
        pdr_config: PDRTreeConfig | None = None,
        sketch_params: SketchParams | None = None,
    ) -> None:
        if not shards:
            raise QueryError("a sharded index needs at least one shard")
        if family not in FAMILIES:
            raise QueryError(
                f"family must be one of {FAMILIES}, got {family!r}"
            )
        if family == "pdr" and strategy is not None:
            raise QueryError("PDR-tree shards take no search strategy")
        self.shards = shards
        self.family = family
        self.strategy = strategy
        self.pdr_config = pdr_config
        #: Kept for worker shipping: process transports rebuild each
        #: shard's sketch from these params (deterministically).
        self.sketch_params = sketch_params

    @classmethod
    def build(
        cls,
        relation: UncertainRelation,
        num_shards: int,
        family: str = "inverted",
        strategy: str | None = None,
        pdr_config: PDRTreeConfig | None = None,
        sketch_params: SketchParams | None = None,
    ) -> "ShardedIndex":
        """Partition ``relation`` and build every shard's index.

        ``sketch_params`` additionally builds a similarity sketch per
        shard — required for scattering similarity top-k queries (the
        coordinator's divergence-ceiling round protocol).
        """
        if family not in FAMILIES:
            raise QueryError(
                f"family must be one of {FAMILIES}, got {family!r}"
            )
        slices = partition(relation, num_shards)
        shards = [
            Shard(
                shard_id=shard,
                slice=slice_,
                index=build_shard_index(
                    slice_, family, pdr_config, sketch_params
                ),
            )
            for shard, slice_ in enumerate(slices)
        ]
        return cls(
            shards,
            family,
            strategy=strategy,
            pdr_config=pdr_config,
            sketch_params=sketch_params,
        )

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def num_tuples(self) -> int:
        return sum(shard.index.num_tuples for shard in self.shards)

    def __repr__(self) -> str:
        return (
            f"ShardedIndex(shards={self.num_shards}, "
            f"family={self.family!r}, tuples={self.num_tuples})"
        )
