"""Exact top-k merging of per-shard answer streams.

:class:`BoundedMatchHeap` transplants the negated-sort-key discipline
of :class:`repro.core.joins.BoundedPairHeap` from join pairs to
:class:`~repro.core.results.Match`: a size-k min-heap over the negated
``sort_index``, so the root is the currently worst retained match,
:meth:`kth_score` is the coordinator's global τ floor, and
:meth:`sorted_matches` reproduces ``sorted(matches)[:k]`` bit-for-bit
— score ties included, because tids are globally unique and make the
key strict.
"""

from __future__ import annotations

import heapq

from repro.core.exceptions import QueryError
from repro.core.results import Match


class BoundedMatchHeap:
    """The k best :class:`Match`\\ es under ``sort_index``, incrementally."""

    __slots__ = ("_k", "_heap")

    def __init__(self, k: int) -> None:
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        self._k = k
        self._heap: list[tuple[tuple[float, int], Match]] = []

    @staticmethod
    def _negated(match: Match) -> tuple[float, int]:
        score, tid = match.sort_index
        return (-score, -tid)

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, match: Match) -> None:
        entry = (self._negated(match), match)
        if len(self._heap) < self._k:
            heapq.heappush(self._heap, entry)
        elif entry[0] > self._heap[0][0]:
            heapq.heapreplace(self._heap, entry)

    def kth_score(self) -> float:
        """The k-th best score so far — the global pruning floor.

        ``0.0`` until k matches are held: with fewer than k results any
        score may still enter the top-k, so no floor can be asserted.
        """
        if len(self._heap) < self._k:
            return 0.0
        return self._heap[0][1].score

    def sorted_matches(self) -> list[Match]:
        """The retained matches in presentation order."""
        return sorted(match for _, match in self._heap)
