"""Shard transports: how the coordinator reaches each shard.

Three implementations of one probe surface:

* :class:`LocalTransport` — the shards live in this process; each
  probe runs under the paper's measurement discipline (fresh
  100-frame pool, disk-stats/tag/METRICS deltas), exactly mirroring
  :func:`repro.bench.harness.measure_query`.  The ``shards=1``
  differential suite runs here.
* :class:`ProcessTransport` — one single-worker process pool per
  shard.  Slices, fault plans, kernel mode, and backend specs ship
  *by value* (the worker-shipping discipline of
  :mod:`repro.bench.parallel` and ``exec/join.py``); each worker
  builds its shard once and holds it for the transport's lifetime, so
  probes within a round genuinely overlap.
* :class:`ServeTransport` — remote shards behind
  :class:`repro.serve.server.QueryServer` instances, reached with one
  pipelined :class:`~repro.serve.client.ServeClient` per shard.  The
  per-request wire deadline bounds each round; a server that sheds
  (``"timeout"`` via deadline enforcement, or admission-control
  ``"shed"``) marks the probe timed out and the coordinator requeues
  the shard into a later round with a higher τ floor.

Every probe returns a :class:`ShardProbe`; probes carry their METRICS
delta so remote work folds back into the coordinator's process-global
registry via the existing snapshot/delta/merge protocol.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ProcessPoolExecutor, wait
from dataclasses import dataclass, field, replace

from repro.core.exceptions import ReproError
from repro.core.kernels import kernel_mode, kernel_override
from repro.core.queries import Query
from repro.core.results import Match, QueryResult, QueryStats
from repro.invindex.index import ProbabilisticInvertedIndex
from repro.obs.metrics import METRICS
from repro.pdrtree.tree import PDRTreeConfig
from repro.shard.index import ShardedIndex, build_shard_index
from repro.shard.partition import ShardSlice
from repro.storage.backends import (
    BackendSpec,
    active_backend_spec,
    backend_scope,
)
from repro.storage.buffer import DEFAULT_POOL_SIZE, BufferPool
from repro.storage.faults import FaultPlan, active_plan, fault_plan


class ShardError(ReproError):
    """A shard failed to build or answer."""


@dataclass
class ShardProbe:
    """One shard's answer to one probe, with its measured work."""

    shard: int
    matches: list[Match]
    reads: int = 0
    #: Physical reads per component ("postings", "tuples", "pdr-node").
    reads_by_tag: dict[str, int] = field(default_factory=dict)
    stats: QueryStats | None = None
    #: The probe's METRICS delta (merged coordinator-side for remote
    #: transports; empty for transports that cannot capture it).
    metrics: dict[str, int] = field(default_factory=dict)
    #: The shard shed the probe (deadline or admission) — requeue it.
    timed_out: bool = False


def measured_probe(
    index,
    strategy: str | None,
    query: Query,
    tau_floor: float,
    pool_size: int,
    sketch: str | None = None,
    div_ceiling: float | None = None,
) -> tuple[QueryResult, int, dict[str, int], dict[str, int]]:
    """Execute one probe under the measurement protocol.

    Fresh buffer pool, then disk-stats / per-tag / METRICS deltas
    scoped around the execution — the same accounting as
    :func:`repro.bench.harness.measure_query`, so per-shard reads add
    up against single-node measurements apples-to-apples.

    ``sketch``/``div_ceiling`` carry the coordinator's similarity
    round state (shipped by value, never via environment re-reads);
    both indexes reject them on non-similarity descriptors, so they
    are only forwarded when set.
    """
    pool = BufferPool(index.disk, pool_size)
    index.pool = pool
    extra = {}
    if sketch is not None:
        extra["sketch"] = sketch
    if div_ceiling is not None:
        extra["div_ceiling"] = div_ceiling
    metrics_before = METRICS.snapshot()
    before = index.disk.stats.snapshot()
    tags_before = index.disk.snapshot_tags()
    if isinstance(index, ProbabilisticInvertedIndex):
        result = index.execute(
            query,
            strategy=strategy or "highest_prob_first",
            tau_floor=tau_floor,
            **extra,
        )
    else:
        result = index.execute(query, tau_floor=tau_floor, **extra)
    delta = index.disk.stats.delta_since(before)
    metrics_delta = METRICS.delta_since(metrics_before)
    tags_after = index.disk.snapshot_tags()
    breakdown = {
        tag: tags_after[tag] - tags_before.get(tag, 0)
        for tag in tags_after
        if tags_after[tag] != tags_before.get(tag, 0)
    }
    return result, delta.reads, breakdown, metrics_delta


class LocalTransport:
    """In-process shards: sequential probes, full measurement fidelity."""

    name = "local"
    #: Probe metrics already landed in this process's METRICS registry.
    remote = False

    def __init__(
        self,
        index: ShardedIndex,
        pool_size: int = DEFAULT_POOL_SIZE,
    ) -> None:
        self.index = index
        self.pool_size = pool_size

    @property
    def num_shards(self) -> int:
        return self.index.num_shards

    def probe(
        self,
        shard: int,
        query: Query,
        tau_floor: float = 0.0,
        deadline_ms: float | None = None,
        sketch: str | None = None,
        div_ceiling: float | None = None,
    ) -> ShardProbe:
        # In-process shards never straggle; the deadline is a no-op.
        handle = self.index.shards[shard]
        result, reads, breakdown, _ = measured_probe(
            handle.index,
            self.index.strategy,
            query,
            tau_floor,
            self.pool_size,
            sketch,
            div_ceiling,
        )
        return ShardProbe(
            shard=shard,
            matches=list(result.matches),
            reads=reads,
            reads_by_tag=breakdown,
            stats=result.stats,
        )

    def probe_many(
        self,
        shard_ids: list[int],
        query: Query,
        tau_floor: float = 0.0,
        deadline_ms: float | None = None,
        sketch: str | None = None,
        div_ceiling: float | None = None,
    ) -> list[ShardProbe]:
        return [
            self.probe(
                shard, query, tau_floor, deadline_ms, sketch, div_ceiling
            )
            for shard in shard_ids
        ]

    def close(self) -> None:
        pass

    def __enter__(self) -> "LocalTransport":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# -- process-pool workers ----------------------------------------------------
#
# One ProcessPoolExecutor(max_workers=1) per shard: the worker builds
# its shard's index once (from the shipped slice) and keeps it in a
# module global, so each probe ships only the query.  Everything the
# build and probes depend on — slice, fault plan, kernel mode, backend
# spec — travels by value, never via environment re-reads, mirroring
# ``repro.bench.parallel._run_one``.

_WORKER_SHARDS: dict[int, tuple] = {}


def _worker_build(
    shard: int,
    slice_: ShardSlice,
    family: str,
    strategy: str | None,
    pdr_config: PDRTreeConfig | None,
    plan: FaultPlan | None,
    kernel: str,
    backend: BackendSpec,
    sketch_params=None,
) -> int:
    with fault_plan(plan), kernel_override(kernel), backend_scope(backend):
        index = build_shard_index(slice_, family, pdr_config, sketch_params)
    _WORKER_SHARDS[shard] = (index, strategy, plan, kernel, backend)
    return shard


def _worker_probe(
    shard: int,
    query: Query,
    tau_floor: float,
    pool_size: int,
    sketch: str | None = None,
    div_ceiling: float | None = None,
) -> ShardProbe:
    try:
        index, strategy, plan, kernel, backend = _WORKER_SHARDS[shard]
    except KeyError:
        raise ShardError(
            f"worker for shard {shard} lost its index (process restarted?)"
        ) from None
    with fault_plan(plan), kernel_override(kernel), backend_scope(backend):
        result, reads, breakdown, metrics = measured_probe(
            index, strategy, query, tau_floor, pool_size, sketch,
            div_ceiling,
        )
    return ShardProbe(
        shard=shard,
        matches=list(result.matches),
        reads=reads,
        reads_by_tag=breakdown,
        stats=result.stats,
        metrics=metrics,
    )


class ProcessTransport:
    """One worker process per shard; probes within a round overlap."""

    name = "process"
    remote = True

    def __init__(
        self,
        slices: list[ShardSlice],
        family: str = "inverted",
        strategy: str | None = None,
        pdr_config: PDRTreeConfig | None = None,
        pool_size: int = DEFAULT_POOL_SIZE,
        sketch_params=None,
    ) -> None:
        if not slices:
            raise ShardError("need at least one shard slice")
        self.pool_size = pool_size
        self._pools = [
            ProcessPoolExecutor(max_workers=1) for _ in slices
        ]
        plan = active_plan()
        kernel = kernel_mode()
        backend = active_backend_spec()
        builds = [
            pool.submit(
                _worker_build,
                shard,
                slice_,
                family,
                strategy,
                pdr_config,
                plan,
                kernel,
                backend,
                sketch_params,
            )
            for shard, (pool, slice_) in enumerate(zip(self._pools, slices))
        ]
        wait(builds)
        for future in builds:
            future.result()  # surface build failures now, not per probe

    @classmethod
    def from_sharded_index(
        cls,
        index: ShardedIndex,
        pool_size: int = DEFAULT_POOL_SIZE,
    ) -> "ProcessTransport":
        """Re-host an in-process :class:`ShardedIndex` in worker processes."""
        return cls(
            [shard.slice for shard in index.shards],
            family=index.family,
            strategy=index.strategy,
            pdr_config=index.pdr_config,
            pool_size=pool_size,
            sketch_params=index.sketch_params,
        )

    @property
    def num_shards(self) -> int:
        return len(self._pools)

    def probe(
        self,
        shard: int,
        query: Query,
        tau_floor: float = 0.0,
        deadline_ms: float | None = None,
        sketch: str | None = None,
        div_ceiling: float | None = None,
    ) -> ShardProbe:
        return self.probe_many(
            [shard], query, tau_floor, deadline_ms, sketch, div_ceiling
        )[0]

    def probe_many(
        self,
        shard_ids: list[int],
        query: Query,
        tau_floor: float = 0.0,
        deadline_ms: float | None = None,
        sketch: str | None = None,
        div_ceiling: float | None = None,
    ) -> list[ShardProbe]:
        # Deadlines are a wire-protocol concept; worker processes are
        # co-located and never shed (results would be computed either
        # way, and discarding them would lose their read accounting).
        futures = [
            self._pools[shard].submit(
                _worker_probe,
                shard,
                query,
                tau_floor,
                self.pool_size,
                sketch,
                div_ceiling,
            )
            for shard in shard_ids
        ]
        return [future.result() for future in futures]

    def close(self) -> None:
        for pool in self._pools:
            pool.shutdown(wait=True)

    def __enter__(self) -> "ProcessTransport":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# -- remote shards over repro.serve ------------------------------------------


class _LoopThread:
    """A background thread running one asyncio event loop."""

    def __init__(self, name: str) -> None:
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run, name=name, daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_forever()

    def call(self, coro):
        """Run a coroutine on the loop; block for (and return) its result."""
        return asyncio.run_coroutine_threadsafe(coro, self.loop).result()

    def stop(self) -> None:
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join()
        self.loop.close()


class ShardCluster:
    """N :class:`~repro.serve.server.QueryServer`\\ s, one per shard.

    A synchronous harness for tests and benchmarks: starts every
    server on a background event loop (default config: ``measure``
    mode, so each served query runs under the paper's fresh-pool
    protocol and its ``reads`` field is the per-probe measurement)
    and exposes their addresses for a :class:`ServeTransport`.
    """

    def __init__(self, index: ShardedIndex, config=None) -> None:
        from repro.serve import ServeConfig

        if config is None:
            # The paper's pool size, not the serving default: a default
            # cluster must answer with single-node measurement fidelity.
            config = ServeConfig(
                mode="measure",
                strategy=index.strategy,
                pool_size=DEFAULT_POOL_SIZE,
            )
        self._config = replace(config, port=0)
        self._index = index
        self._loop: _LoopThread | None = None
        self._servers: list = []
        self.addresses: list[tuple[str, int]] = []

    def start(self) -> list[tuple[str, int]]:
        from repro.serve import QueryServer

        self._loop = _LoopThread("shard-cluster")
        for shard in self._index.shards:
            server = QueryServer(shard.index, config=self._config)
            self._loop.call(server.start())
            self._servers.append(server)
            self.addresses.append(server.address)
        return self.addresses

    def stop(self) -> None:
        if self._loop is None:
            return
        for server in self._servers:
            self._loop.call(server.stop())
        self._loop.stop()
        self._loop = None
        self._servers = []

    def __enter__(self) -> "ShardCluster":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


class ServeTransport:
    """Remote shards over the :mod:`repro.serve` wire protocol.

    One pipelined :class:`~repro.serve.client.ServeClient` per shard,
    connected lazily and kept across rounds.  ``deadline_ms`` maps
    onto the wire deadline, so a straggling shard is *shed by its own
    server* (answer ``"timeout"``) instead of stalling the round; an
    admission-control ``"shed"`` is treated the same way.  Probes of
    one round fan out concurrently on the client loop.
    """

    name = "serve"
    remote = True

    def __init__(self, addresses: list[tuple[str, int]]) -> None:
        if not addresses:
            raise ShardError("need at least one shard address")
        self.addresses = list(addresses)
        self._loop = _LoopThread("shard-serve-transport")
        self._clients: list = [None] * len(addresses)

    @property
    def num_shards(self) -> int:
        return len(self.addresses)

    async def _client(self, shard: int):
        from repro.serve import ServeClient

        if self._clients[shard] is None:
            host, port = self.addresses[shard]
            self._clients[shard] = await ServeClient(host, port).connect()
        return self._clients[shard]

    async def _probe_async(
        self,
        shard: int,
        query: Query,
        tau_floor: float,
        deadline_ms: float | None,
        sketch: str | None = None,
        div_ceiling: float | None = None,
    ) -> ShardProbe:
        client = await self._client(shard)
        payload = await client.request(
            query,
            deadline_ms=deadline_ms,
            tau_floor=tau_floor,
            sketch=sketch,
            div_ceiling=div_ceiling,
        )
        status = payload.get("status")
        if status in ("timeout", "shed"):
            return ShardProbe(shard=shard, matches=[], timed_out=True)
        if status != "ok":
            raise ShardError(
                f"shard {shard} answered {status!r}: "
                f"{payload.get('error') or payload.get('reason') or ''}"
            )
        matches = [
            Match(tid=int(tid), score=float(score))
            for tid, score in payload.get("matches", [])
        ]
        return ShardProbe(
            shard=shard,
            matches=matches,
            reads=int(payload.get("reads", 0)),
            reads_by_tag={},
        )

    async def _probe_many_async(
        self,
        shard_ids: list[int],
        query: Query,
        tau_floor: float,
        deadline_ms: float | None,
        sketch: str | None = None,
        div_ceiling: float | None = None,
    ) -> list[ShardProbe]:
        return list(
            await asyncio.gather(
                *(
                    self._probe_async(
                        shard, query, tau_floor, deadline_ms, sketch,
                        div_ceiling,
                    )
                    for shard in shard_ids
                )
            )
        )

    def probe(
        self,
        shard: int,
        query: Query,
        tau_floor: float = 0.0,
        deadline_ms: float | None = None,
        sketch: str | None = None,
        div_ceiling: float | None = None,
    ) -> ShardProbe:
        return self._loop.call(
            self._probe_async(
                shard, query, tau_floor, deadline_ms, sketch, div_ceiling
            )
        )

    def probe_many(
        self,
        shard_ids: list[int],
        query: Query,
        tau_floor: float = 0.0,
        deadline_ms: float | None = None,
        sketch: str | None = None,
        div_ceiling: float | None = None,
    ) -> list[ShardProbe]:
        return self._loop.call(
            self._probe_many_async(
                shard_ids, query, tau_floor, deadline_ms, sketch,
                div_ceiling,
            )
        )

    async def _close_async(self) -> None:
        for client in self._clients:
            if client is not None:
                await client.close()

    def close(self) -> None:
        if self._loop is None:
            return
        self._loop.call(self._close_async())
        self._loop.stop()
        self._loop = None

    def __enter__(self) -> "ServeTransport":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
