"""The scatter-gather coordinator and its distributed-τ round protocol.

Threshold (PETQ) and PEQ queries are a single fan-out: every shard
answers over its own tuples, and because tids are disjoint across
shards the union of per-shard matches *is* the single-node answer,
presentation order included.

Top-k runs in **rounds**: the shard queue is drained ``fanout`` shards
per round, and each round's probes carry the coordinator's current
global k-th score as their ``tau_floor`` — so Lemma-1 early stops
inside every shard fire against the *global* bound, not the shard's
local one.  Exactness (docs/sharding.md): each shard is probed exactly
once per execution; a probe may omit only matches scoring *strictly
below* its floor; the floor is the global heap's k-th score, which
never decreases and never exceeds the final global k-th score — so an
omitted match scores strictly below the final k-th and cannot belong
to the global top-k, while ties at the floor are always returned.
Globally unique tids make the :class:`~repro.core.results.Match` sort
key strict, so the bounded merge heap reproduces the single-node tie
order bit-for-bit.

``fanout=1`` is the strongest propagation (every shard after the
first sees the best floor available — the distributed-τ benchmark
leg); ``fanout=num_shards`` degenerates to one floorless round (the
no-propagation leg); ``shards=1`` reproduces the single-node protocol
bit-for-bit — answers, scores, tie order, and posting reads.

Similarity top-k runs the same round protocol with the *dual* bound:
each round's probes carry ``div_ceiling`` — the global k-th
divergence so far (``-heap.kth_score()``, since similarity scores are
negated divergences) — and every shard prunes against it with its
sketch's provable lower bounds (docs/sketch-prefilter.md).  The
ceiling is monotone non-increasing and never drops below the final
global k-th divergence, so an omitted match provably cannot enter the
global top-k.  This requires exact sketch mode (``REPRO_SKETCH=exact``)
and shards built with ``sketch_params``; any other resolved mode is
refused with instructions, since without sound per-shard bounds the
coordinator cannot certify the merge.

Shards that miss a round's deadline (remote transports shed them via
the wire deadline or admission control) are requeued into a later
round, where they benefit from the floor raised in the meantime;
retries run without a deadline, so the protocol always terminates
with every shard's answer merged.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core.exceptions import QueryError
from repro.core.queries import EqualityTopKQuery, Query, SimilarityTopKQuery
from repro.core.results import Match, QueryResult, QueryStats
from repro.obs import trace as _trace
from repro.obs.metrics import METRICS
from repro.shard.merge import BoundedMatchHeap
from repro.shard.transport import ShardProbe


@dataclass
class ShardedResult:
    """A merged answer plus the aggregate work behind it."""

    result: QueryResult
    #: Aggregate physical reads across every shard probe.
    reads: int
    #: Aggregate per-tag read breakdown ("postings", "tuples", ...).
    reads_by_tag: dict[str, int] = field(default_factory=dict)
    rounds: int = 0
    #: Probes shed by their shard's deadline/admission and retried.
    timeouts: int = 0
    #: One summary per completed probe, in shard order.
    per_shard: list[dict] = field(default_factory=list)

    @property
    def matches(self) -> list[Match]:
        return self.result.matches

    def __len__(self) -> int:
        return len(self.result.matches)

    def __iter__(self):
        return iter(self.result.matches)


class ShardCoordinator:
    """Scatter-gather execution over a shard transport.

    Parameters
    ----------
    transport:
        Anything with ``num_shards``, ``probe_many``, ``remote``, and
        ``name`` (see :mod:`repro.shard.transport`).
    fanout:
        Shards probed per top-k round (default: all of them — one
        round, no propagation).  Lower fan-outs trade rounds for
        tighter floors.
    round_deadline_ms:
        Wire deadline applied to each shard's *first* probe (remote
        transports only); shed shards are requeued and retried
        without a deadline.  ``None`` disables shedding.
    domain_size:
        Domain size used by :meth:`execute_many` to group a workload
        by touched posting lists (optional).
    """

    def __init__(
        self,
        transport,
        fanout: int | None = None,
        round_deadline_ms: float | None = None,
        domain_size: int | None = None,
    ) -> None:
        if fanout is not None and fanout < 1:
            raise QueryError(f"fanout must be >= 1, got {fanout}")
        if round_deadline_ms is not None and round_deadline_ms <= 0:
            raise QueryError(
                f"round_deadline_ms must be positive, got {round_deadline_ms}"
            )
        self.transport = transport
        self.fanout = (
            transport.num_shards if fanout is None else min(
                fanout, transport.num_shards
            )
        )
        self.round_deadline_ms = round_deadline_ms
        self.domain_size = domain_size

    # -- execution -----------------------------------------------------------

    def execute(self, query: Query) -> ShardedResult:
        """Scatter ``query`` to every shard and merge the exact answer."""
        is_sim_topk = isinstance(query, SimilarityTopKQuery)
        if is_sim_topk:
            # Similarity top-k scatters only under exact sketch
            # pre-filtering: the round protocol pushes the global k-th
            # divergence back as each probe's div_ceiling, and shards
            # need sketch lower bounds to act on it soundly (a shard
            # may omit a match only when its provable bound strictly
            # exceeds the ceiling — docs/sketch-prefilter.md).
            from repro.sketch import resolve_sketch

            mode = resolve_sketch()
            if mode != "exact":
                raise QueryError(
                    "similarity top-k scatter-gather requires exact "
                    "sketch pre-filtering: set REPRO_SKETCH=exact (or "
                    "sketch_override('exact')) and build shards with "
                    f"sketch_params; resolved sketch mode is {mode!r}"
                )
        num_shards = self.transport.num_shards
        is_topk = isinstance(query, EqualityTopKQuery) or is_sim_topk
        heap = BoundedMatchHeap(query.k) if is_topk else None
        tracer = _trace.ACTIVE
        METRICS.inc("shard.query")
        if tracer is not None:
            begin = {
                "shards": num_shards,
                "query": type(query).__name__,
                "transport": self.transport.name,
            }
            if is_topk:
                begin["k"] = query.k
                begin["fanout"] = self.fanout
            tracer.event("shard.begin", **begin)
        pending: deque[int] = deque(range(num_shards))
        unattempted = set(pending)
        completed: dict[int, ShardProbe] = {}
        rounds = timeouts = 0
        while pending:
            if is_topk:
                wave = [
                    pending.popleft()
                    for _ in range(min(self.fanout, len(pending)))
                ]
            else:
                wave = list(pending)
                pending.clear()
            # Equality top-k propagates the k-th *score* as tau_floor;
            # similarity top-k propagates the k-th *divergence* as
            # div_ceiling (= -kth_score, since Match.score negates the
            # divergence).  Both are monotone in the coordinator's
            # favor: the floor never decreases, the ceiling never
            # increases, so a probe pruned against either can never
            # belong to the final global top-k.
            tau_floor = (
                heap.kth_score() if is_topk and not is_sim_topk else 0.0
            )
            div_ceiling = (
                -heap.kth_score()
                if is_sim_topk and len(heap) >= query.k
                else None
            )
            sketch = "exact" if is_sim_topk else None
            deadline = (
                self.round_deadline_ms
                if all(shard in unattempted for shard in wave)
                else None
            )
            rounds += 1
            METRICS.inc("shard.round")
            if tracer is not None:
                round_fields = {
                    "round": rounds,
                    "size": len(wave),
                    "tau_floor": tau_floor,
                }
                if div_ceiling is not None:
                    round_fields["div_ceiling"] = div_ceiling
                tracer.event("shard.round", **round_fields)
            probes = self.transport.probe_many(
                wave, query, tau_floor, deadline, sketch, div_ceiling
            )
            for probe in probes:
                unattempted.discard(probe.shard)
                if probe.timed_out:
                    timeouts += 1
                    METRICS.inc("shard.shed")
                    if tracer is not None:
                        tracer.event(
                            "shard.shed", shard=probe.shard, round=rounds
                        )
                    pending.append(probe.shard)
                    continue
                METRICS.inc("shard.probe")
                if tracer is not None:
                    tracer.event(
                        "shard.probe",
                        shard=probe.shard,
                        reads=probe.reads,
                        matches=len(probe.matches),
                        tau_floor=tau_floor,
                    )
                if self.transport.remote and probe.metrics:
                    # Fold remote work back into this process's
                    # registry via the standard delta protocol.
                    METRICS.merge(probe.metrics)
                completed[probe.shard] = probe
                if is_topk:
                    for match in probe.matches:
                        heap.push(match)
        return self._merged(completed, heap, rounds, timeouts, tracer)

    def _merged(
        self,
        completed: dict[int, ShardProbe],
        heap: BoundedMatchHeap | None,
        rounds: int,
        timeouts: int,
        tracer,
    ) -> ShardedResult:
        stats = QueryStats()
        reads = 0
        reads_by_tag: dict[str, int] = {}
        per_shard = []
        for shard in sorted(completed):
            probe = completed[shard]
            if probe.stats is not None:
                stats.merge(probe.stats)
            reads += probe.reads
            for tag, count in probe.reads_by_tag.items():
                reads_by_tag[tag] = reads_by_tag.get(tag, 0) + count
            per_shard.append(
                {
                    "shard": shard,
                    "reads": probe.reads,
                    "reads_by_tag": dict(probe.reads_by_tag),
                    "matches": len(probe.matches),
                }
            )
        if heap is not None:
            matches = heap.sorted_matches()
        else:
            matches = [
                match
                for shard in sorted(completed)
                for match in completed[shard].matches
            ]
        result = QueryResult(matches, stats)
        if tracer is not None:
            tracer.event(
                "shard.end",
                shards=len(completed),
                reads=reads,
                matches=len(result.matches),
                rounds=rounds,
            )
        return ShardedResult(
            result=result,
            reads=reads,
            reads_by_tag=reads_by_tag,
            rounds=rounds,
            timeouts=timeouts,
            per_shard=per_shard,
        )

    def execute_many(self, queries: list[Query]) -> list[ShardedResult]:
        """Execute a workload, grouped by shared posting-list footprint.

        Reuses the batch executor's
        :func:`~repro.exec.batch.plan_shared_order` so queries touching
        the same lists scatter back-to-back (warm server pools and OS
        caches see consecutive touches); results return in input
        order, and each query is still an independent exact scatter.
        """
        from repro.exec.batch import plan_shared_order

        order, _ = plan_shared_order(queries, self.domain_size)
        results: list[ShardedResult | None] = [None] * len(queries)
        for position in order:
            results[position] = self.execute(queries[position])
        return results
