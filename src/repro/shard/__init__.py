"""Scatter-gather sharding with distributed adaptive-τ propagation.

:mod:`repro.shard.partition` hash-partitions a relation by tid into
global-tid-preserving slices; :mod:`repro.shard.index` builds one full
index per slice; :mod:`repro.shard.transport` reaches the shards
in-process, via per-shard worker processes, or over the
:mod:`repro.serve` wire; and :mod:`repro.shard.coordinator` runs exact
scatter-gather queries with a round-based top-k protocol that pushes
the global k-th score back to every shard as its pruning floor.  See
``docs/sharding.md``.
"""

from repro.shard.coordinator import ShardCoordinator, ShardedResult
from repro.shard.index import FAMILIES, Shard, ShardedIndex, build_shard_index
from repro.shard.merge import BoundedMatchHeap
from repro.shard.partition import ShardSlice, partition, shard_of
from repro.shard.transport import (
    LocalTransport,
    ProcessTransport,
    ServeTransport,
    ShardCluster,
    ShardError,
    ShardProbe,
    measured_probe,
)

__all__ = [
    "BoundedMatchHeap",
    "FAMILIES",
    "LocalTransport",
    "ProcessTransport",
    "ServeTransport",
    "Shard",
    "ShardCluster",
    "ShardCoordinator",
    "ShardError",
    "ShardProbe",
    "ShardSlice",
    "ShardedIndex",
    "ShardedResult",
    "build_shard_index",
    "measured_probe",
    "partition",
    "shard_of",
]
