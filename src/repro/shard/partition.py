"""Hash partitioning of an uncertain relation across shards.

A tuple's owner shard is a pure function of its tid
(:func:`shard_of`), so any component — builder, coordinator, worker
process, remote server — agrees on placement without coordination.
:class:`ShardSlice` adapts one shard's tuple subset to the relation
protocol the index builders consume (``tids`` / ``uda_of`` /
``domain`` / ``to_sparse_matrix``), **preserving global tids**: the
sparse matrix keeps its rows at global tid positions, so the CSC
column slices the inverted index bulk-builds from carry global tids,
and the PDR-tree's tuple-at-a-time build inserts under global tids
directly.  With one shard the slice is the whole relation and the
built structures are byte-identical to a single-node build — the
anchor of the ``shards=1`` differential suite (docs/sharding.md).
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.core.exceptions import QueryError
from repro.core.relation import UncertainRelation
from repro.core.uda import UncertainAttribute


def shard_of(tid: int, num_shards: int) -> int:
    """The shard owning tuple ``tid``.

    Tids are dense non-negative integers, so the identity hash with a
    modulo fold is both deterministic and perfectly balanced; a mixing
    hash would only shuffle which (equally sized) slice each shard
    gets.
    """
    if num_shards < 1:
        raise QueryError(f"num_shards must be >= 1, got {num_shards}")
    return tid % num_shards


class ShardSlice:
    """One shard's tuple subset, speaking the relation-build protocol.

    Self-contained (domain + own tuples only), so shipping a slice to
    a worker process pickles one shard's data, not the whole relation.
    ``total_rows`` is the *global* tid space size — the row count of
    :meth:`to_sparse_matrix`, which keeps every tuple at its global
    row so downstream CSC slices yield global tids.
    """

    def __init__(
        self,
        domain,
        total_rows: int,
        tids: list[int],
        udas: list[UncertainAttribute],
        name: str = "R",
    ) -> None:
        if len(tids) != len(udas):
            raise QueryError(
                f"{len(tids)} tids for {len(udas)} udas"
            )
        self.domain = domain
        self.name = name
        self.total_rows = total_rows
        self._tids = list(tids)
        self._udas = dict(zip(self._tids, udas))
        self._matrix: sparse.csr_matrix | None = None

    @classmethod
    def from_relation(
        cls,
        relation: UncertainRelation,
        shard: int,
        num_shards: int,
    ) -> "ShardSlice":
        """The slice of ``relation`` owned by ``shard``."""
        tids = [
            tid
            for tid in relation.tids()
            if shard_of(tid, num_shards) == shard
        ]
        return cls(
            relation.domain,
            len(relation),
            tids,
            [relation.uda_of(tid) for tid in tids],
            name=f"{relation.name}/shard{shard}",
        )

    # -- the relation-build protocol ----------------------------------------

    def tids(self) -> list[int]:
        """This shard's tuple ids (global, ascending)."""
        return list(self._tids)

    def uda_of(self, tid: int) -> UncertainAttribute:
        return self._udas[tid]

    def __len__(self) -> int:
        return len(self._tids)

    def __iter__(self):
        return (self._udas[tid] for tid in self._tids)

    def to_sparse_matrix(self) -> sparse.csr_matrix:
        """The slice as a ``total_rows x N`` CSR matrix of probabilities.

        Rows sit at global tid positions (rows of other shards' tuples
        are empty), mirroring
        :meth:`repro.core.relation.UncertainRelation.to_sparse_matrix`
        exactly for the tuples present — with one shard the two
        matrices are equal element-for-element.
        """
        if self._matrix is None:
            indptr = np.zeros(self.total_rows + 1, dtype=np.int64)
            for tid in self._tids:
                indptr[tid + 1] = self._udas[tid].nnz
            np.cumsum(indptr, out=indptr)
            indices = np.empty(indptr[-1], dtype=np.int64)
            data = np.empty(indptr[-1])
            for tid in self._tids:
                uda = self._udas[tid]
                indices[indptr[tid] : indptr[tid + 1]] = uda.items
                data[indptr[tid] : indptr[tid + 1]] = uda.probs
            self._matrix = sparse.csr_matrix(
                (data, indices, indptr),
                shape=(self.total_rows, len(self.domain)),
            )
        return self._matrix

    def __repr__(self) -> str:
        return (
            f"ShardSlice(name={self.name!r}, tuples={len(self)}, "
            f"domain_size={len(self.domain)})"
        )


def partition(
    relation: UncertainRelation, num_shards: int
) -> list[ShardSlice]:
    """Split ``relation`` into ``num_shards`` slices by tid hash."""
    if num_shards < 1:
        raise QueryError(f"num_shards must be >= 1, got {num_shards}")
    return [
        ShardSlice.from_relation(relation, shard, num_shards)
        for shard in range(num_shards)
    ]
