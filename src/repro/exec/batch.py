"""Batched multi-query executor with shared-scan amortization.

The paper's measurement protocol charges every query a fresh buffer pool
(Section 4), so two queries touching the same posting list each pay its
page reads in full.  Under heavy traffic that is the dominant waste: hot
lists are re-read (and CRC-verified, and re-decoded) once per query.
:class:`BatchExecutor` generalizes the protocol from *per-query* to
*per-batch* pools:

* queries are grouped into batches of ``batch_size`` (``--batch`` /
  ``REPRO_BATCH``);
* each batch runs against one fresh pool, so pages fetched by an earlier
  query in the batch are buffer hits for later ones;
* within a batch, queries are ordered so that queries touching the same
  domain elements run back-to-back (their shared pages are still
  resident);
* the head pages (root -> first leaf) of posting lists shared by two or
  more queries are prefetched *pinned* (:meth:`BufferPool.fetch_many`),
  so the guaranteed-shared pages are read once and cannot be evicted
  mid-batch;
* random-access tuple decodes are memoized across the batch
  (:meth:`ProbabilisticInvertedIndex.shared_scan`): a tuple verified by
  one query is served from memory to every later query in the batch.

Each query still executes its ordinary strategy code with its own
:class:`~repro.core.results.QueryStats` — per-query frontier bookkeeping,
Lemma 1 early stops, and answers are *identical* to per-query execution
(enforced by ``tests/exec/test_batch_differential.py``).  Only the
physical reads change: a batch of size 1 degenerates to exactly the
per-query protocol (no reordering, no prefetch, fresh pool per query),
so baseline I/O numbers are reproducible by setting ``--batch 1``.

See ``docs/batch-execution.md`` for the amortization model and why
batched reads may legally drop below the per-query baseline.
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext

from repro.core.config import parse_int_knob, read_env_int
from repro.core.exceptions import QueryError
from repro.core.queries import (
    EqualityQuery,
    EqualityThresholdQuery,
    EqualityTopKQuery,
    Query,
    SimilarityThresholdQuery,
    SimilarityTopKQuery,
    WindowedEqualityQuery,
)
from repro.core.results import QueryResult
from repro.invindex.index import ProbabilisticInvertedIndex
from repro.obs import trace as _trace
from repro.obs.metrics import METRICS
from repro.storage.buffer import DEFAULT_POOL_SIZE, BufferPool

#: Environment variable selecting the default batch size.
BATCH_ENV = "REPRO_BATCH"

#: Frames kept un-pinned for the queries' own working sets when
#: prefetching (see :meth:`BufferPool.fetch_many`'s ``reserve``).
DEFAULT_PIN_RESERVE = 8

#: Process-local override installed by :func:`batch_override`.
_OVERRIDE: int | None = None


def resolve_batch(batch: int | None = None) -> int:
    """The effective batch size: explicit arg > override > env > 1.

    An unset / empty / ``off`` environment value means batch size 1 —
    the per-query protocol, which is always the I/O baseline.  A
    malformed ``REPRO_BATCH`` raises a
    :class:`~repro.core.exceptions.ConfigError` naming the variable
    (see :mod:`repro.core.config`).
    """
    if batch is not None:
        return parse_int_knob(batch, "batch size", minimum=1)
    if _OVERRIDE is not None:
        return _OVERRIDE
    value = read_env_int(
        BATCH_ENV, minimum=1, special={"off": 1, "default": 1}
    )
    return 1 if value is None else value


@contextmanager
def batch_override(batch: int):
    """Scope a batch size to a block (tests and worker processes)."""
    global _OVERRIDE
    batch = parse_int_knob(batch, "batch size", minimum=1)
    previous = _OVERRIDE
    _OVERRIDE = batch
    try:
        yield
    finally:
        _OVERRIDE = previous


def touched_items(query: Query, domain_size: int | None = None) -> list[int]:
    """The domain elements whose access paths ``query`` reads.

    Windowed queries expand first (with the executor's domain clamp), so
    the signature reflects the posting lists actually opened.
    """
    if isinstance(query, WindowedEqualityQuery):
        return query.expanded(domain_size).items.tolist()
    if isinstance(
        query,
        (
            EqualityQuery,
            EqualityThresholdQuery,
            EqualityTopKQuery,
            SimilarityThresholdQuery,
            SimilarityTopKQuery,
        ),
    ):
        return query.q.items.tolist()
    raise QueryError(f"unsupported query type {type(query).__name__}")


def plan_shared_order(
    queries: list[Query], domain_size: int | None
) -> tuple[list[int], dict[int, int]]:
    """Execution order and per-item query counts for one batch/block.

    Queries touching the same elements run back-to-back (stable sort by
    touched-item signature, so equal signatures keep their input order);
    the counts drive the shared-list prefetch.  Shared by the batch
    executor and the block rank-join engine.
    """
    signatures = [
        tuple(touched_items(query, domain_size)) for query in queries
    ]
    order = sorted(range(len(queries)), key=lambda i: (signatures[i], i))
    counts: dict[int, int] = {}
    for signature in signatures:
        for item in set(signature):
            counts[item] = counts.get(item, 0) + 1
    return order, counts


def prefetch_shared_heads(
    index,
    pool: BufferPool,
    counts: dict[int, int],
    *,
    pin_reserve: int,
    event_kind: str = "batch.shared_page",
    count_field: str = "queries",
) -> list[int]:
    """Pin the head pages of posting lists shared by >= 2 queries.

    Only the root -> first-leaf path is pinned — the pages *every*
    strategy touching the list is guaranteed to read — so the hint can
    only save reads, never add speculative ones that a per-query run
    would not have performed.  Emits one ``event_kind`` record (and
    counter) per pinned page, with the sharer count under
    ``count_field`` (``queries`` for batches, ``probes`` for join
    blocks).  Returns the pinned page ids; the caller must unpin them.
    """
    shared = sorted(
        (item for item, count in counts.items() if count >= 2),
        key=lambda item: (-counts[item], item),
    )
    pinned: list[int] = []
    sharers_of_page: dict[int, int] = {}
    for item in shared:
        posting_list = index.posting_list(item)
        if posting_list is None:
            continue
        page_ids = posting_list.head_page_ids()
        got = pool.fetch_many(page_ids, pin=True, reserve=pin_reserve)
        pinned.extend(got)
        for page_id in got:
            sharers_of_page[page_id] = counts[item]
        if len(got) < len(page_ids):
            break  # pin budget exhausted; stop hinting
    tracer = _trace.ACTIVE
    for page_id in pinned:
        METRICS.inc(event_kind)
        if tracer is not None:
            tracer.event(
                event_kind,
                page_id=page_id,
                **{count_field: sharers_of_page[page_id]},
            )
    return pinned


class BatchExecutor:
    """Execute a workload in batches over shared per-batch buffer pools.

    Parameters
    ----------
    index:
        A :class:`ProbabilisticInvertedIndex` or
        :class:`~repro.pdrtree.tree.PDRTree`.
    strategy:
        Inverted-index search strategy (ignored must-be-None for the
        PDR-tree, mirroring :class:`~repro.bench.harness.IndexUnderTest`).
    pool_size:
        Frames per batch pool (the paper's per-query allocation, now
        amortized over the batch).
    batch_size:
        Queries per pool; ``None`` consults :func:`resolve_batch`.
    pin_reserve:
        Frames the prefetch must leave un-pinned.
    pool:
        ``None`` (the measurement default) allocates a *fresh* pool per
        batch — the protocol all committed I/O baselines bind to.  A
        long-lived :class:`BufferPool` switches the executor to serving
        mode: every batch runs against this shared warm pool, so pages
        (and decoded objects) stay hot *across* batches and pool
        construction disappears from the request path.  See
        ``docs/serving.md``; per-request I/O is then attributed with
        stats deltas, not pool construction.
    """

    def __init__(
        self,
        index,
        *,
        strategy: str | None = None,
        pool_size: int = DEFAULT_POOL_SIZE,
        batch_size: int | None = None,
        pin_reserve: int = DEFAULT_PIN_RESERVE,
        pool: BufferPool | None = None,
    ) -> None:
        if strategy is not None and not isinstance(
            index, ProbabilisticInvertedIndex
        ):
            raise QueryError("only the inverted index takes a search strategy")
        if pin_reserve < 0:
            raise QueryError(f"pin_reserve must be >= 0, got {pin_reserve}")
        if pool is not None and pool.disk is not index.disk:
            raise QueryError("serving pool must be backed by the index's disk")
        self.index = index
        self.strategy = strategy
        self.pool_size = pool_size
        self.batch_size = resolve_batch(batch_size)
        self.pin_reserve = pin_reserve
        self.pool = pool

    # -- public API ---------------------------------------------------------

    def run(self, queries: list[Query]) -> list[QueryResult]:
        """Execute the workload; results align with the input order."""
        results: list[QueryResult] = []
        for start in range(0, len(queries), self.batch_size):
            results.extend(self._run_batch(queries[start : start + self.batch_size]))
        return results

    # -- internals ----------------------------------------------------------

    def _execute(self, query: Query) -> QueryResult:
        if isinstance(self.index, ProbabilisticInvertedIndex):
            return self.index.execute(
                query, strategy=self.strategy or "highest_prob_first"
            )
        return self.index.execute(query)

    def _structure(self) -> str:
        return (
            "inv-index"
            if isinstance(self.index, ProbabilisticInvertedIndex)
            else "pdr-tree"
        )

    def _domain_size(self) -> int | None:
        return getattr(self.index, "domain_size", None)

    def _plan(self, queries: list[Query]) -> tuple[list[int], dict[int, int]]:
        """Execution order and per-item query counts for one batch."""
        return plan_shared_order(queries, self._domain_size())

    def _prefetch_shared(
        self, pool: BufferPool, counts: dict[int, int], queries: list[Query]
    ) -> list[int]:
        """Pin shared posting-list head pages (see
        :func:`prefetch_shared_heads`).  Row pruning is the exception:
        it may skip whole lists, so no prefetch is issued for it.
        """
        pinned = self._prefetch_sketch(pool, queries)
        if not isinstance(self.index, ProbabilisticInvertedIndex):
            return pinned
        if self.strategy == "row_pruning":
            return pinned
        return pinned + prefetch_shared_heads(
            self.index, pool, counts, pin_reserve=self.pin_reserve
        )

    def _prefetch_sketch(
        self, pool: BufferPool, queries: list[Query]
    ) -> list[int]:
        """Pin the sketch pages when >= 2 batch members will scan them.

        In exact mode every similarity query scans the whole projection
        heap, so with two or more similarity queries in the batch those
        pages are guaranteed shared — the same only-certain-reads rule
        the posting-head prefetch follows.
        """
        from repro.sketch import resolve_sketch

        sketch = getattr(self.index, "sketch", None)
        if sketch is None or resolve_sketch() != "exact":
            return []
        similar = sum(
            isinstance(
                q, (SimilarityThresholdQuery, SimilarityTopKQuery)
            )
            for q in queries
        )
        if similar < 2:
            return []
        pinned = pool.fetch_many(
            sketch.page_ids(), pin=True, reserve=self.pin_reserve
        )
        tracer = _trace.ACTIVE
        for page_id in pinned:
            METRICS.inc("batch.shared_page")
            if tracer is not None:
                tracer.event(
                    "batch.shared_page", page_id=page_id, queries=similar
                )
        return pinned

    def _execute_one(self, position: int, query: Query) -> QueryResult:
        """Execute one batch member.

        Hook for the serving layer (:mod:`repro.exec.serving`), which
        overrides it to attribute per-request reads with stats deltas —
        the shared warm pool makes "reads since the pool was built"
        meaningless as a per-request number.
        """
        return self._execute(query)

    def _run_batch(self, queries: list[Query]) -> list[QueryResult]:
        warm = self.pool is not None
        pool = self.pool if warm else BufferPool(self.index.disk, self.pool_size)
        self.index.pool = pool
        tracer = _trace.ACTIVE
        if tracer is not None:
            fields = {}
            if self.strategy is not None:
                fields["strategy"] = self.strategy
            if warm:
                fields["mode"] = "warm"
            tracer.event(
                "batch.begin",
                size=len(queries),
                structure=self._structure(),
                **fields,
            )
        pinned: list[int] = []
        results: list[QueryResult | None] = [None] * len(queries)
        # Tuple decodes are memoized across the batch's queries (never at
        # batch size 1, which must reproduce per-query physical work).
        scope = (
            self.index.shared_scan()
            if len(queries) > 1
            and isinstance(self.index, ProbabilisticInvertedIndex)
            else nullcontext()
        )
        try:
            with scope:
                if len(queries) > 1:
                    order, counts = self._plan(queries)
                    pinned = self._prefetch_shared(pool, counts, queries)
                else:
                    order = list(range(len(queries)))
                for position in order:
                    METRICS.inc("batch.query")
                    if tracer is not None:
                        tracer.event(
                            "batch.query",
                            position=position,
                            query=type(queries[position]).__name__,
                        )
                    results[position] = self._execute_one(
                        position, queries[position]
                    )
        finally:
            for page_id in pinned:
                pool.unpin_page(page_id)
        if tracer is not None:
            tracer.event(
                "batch.end", size=len(queries), shared_pages=len(pinned)
            )
        return results
