"""Block rank-join engine: shared-scan probing with adaptive thresholds.

The index-nested-loop joins in :mod:`repro.core.joins` issue one probe
per outer tuple, each against whatever buffer pool is installed on the
inner index.  That reproduces the paper's protocol faithfully but wastes
physical work under real workloads: outer tuples drawn from the same
distribution touch the same posting lists over and over, and a top-k
join learns a global score bound that the per-probe loop never exploits.

:class:`BlockJoinExecutor` partitions the outer relation into blocks of
``block_size`` tuples (``--join-block`` / ``REPRO_JOIN_BLOCK``) and adds
three composable optimisations, each guarded so that **block size 1
with no pool override reproduces the per-probe join bit-for-bit** — it
literally delegates to :mod:`repro.core.joins`:

* **Shared-scan block probing** (PETJ over the inverted index): the
  block's touched posting lists are each read once via
  :meth:`PostingList.read_all`, and every (outer row, inner tuple) score
  is computed by one grouped-``fsum`` kernel call
  (:func:`repro.core.kernels.block_scores`).  The kernel sums exactly
  the same product multiset as a per-probe verification, so scores are
  bit-identical; only the physical read pattern changes.
* **Grouped probing** (top-k joins, DSTJ, non-inverted inners): probes
  inside a block share one fresh pool, run in touched-item order
  (:func:`repro.exec.batch.plan_shared_order`), pin the head pages of
  posting lists shared by two or more probes
  (:func:`repro.exec.batch.prefetch_shared_heads`, traced as
  ``join.shared_page``), and memoize random-access decodes via
  :meth:`ProbabilisticInvertedIndex.shared_scan`.
* **Adaptive top-k threshold propagation** (PEJ-top-k): a
  :class:`~repro.core.joins.BoundedPairHeap` tracks the global k-th
  pair score; every subsequent probe passes it to the index as
  ``tau_floor``, so Lemma 1 early stops fire against the *join-wide*
  threshold instead of each probe's local one.  Probes that ran with a
  raised bound are traced as ``join.tau_raised``.  Exactness: the floor
  only ever rises toward the final global k-th score, and any match it
  suppresses scores strictly below that floor, so it can never displace
  a retained pair — see ``docs/joins.md`` for the full argument.

:func:`parallel_join` partitions the outer side into contiguous chunks
and runs one :class:`BlockJoinExecutor` per worker process (each worker
rebuilds the inner index, so pools are per-worker fresh, mirroring
:mod:`repro.bench.parallel`), merging chunk results in submission order
before a final total-order sort.  Workers do not emit trace records;
only the parent's ``join.begin`` / ``join.end`` bracket survives.
"""

from __future__ import annotations

import math
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager, nullcontext

from repro.core import kernels
from repro.core.config import parse_int_knob, read_env_int
from repro.core.exceptions import QueryError
from repro.core.joins import (
    BoundedPairHeap,
    JoinPair,
    JoinResult,
    _join_begin,
    _join_end,
    _join_probe,
    dstj as _legacy_dstj,
    pej_top_k as _legacy_pej_top_k,
    petj as _legacy_petj,
)
from repro.core.queries import (
    EqualityThresholdQuery,
    EqualityTopKQuery,
    SimilarityThresholdQuery,
)
from repro.core.relation import UncertainRelation
from repro.core.results import QueryStats
from repro.exec.batch import (
    DEFAULT_PIN_RESERVE,
    plan_shared_order,
    prefetch_shared_heads,
)
from repro.invindex.index import ProbabilisticInvertedIndex
from repro.obs import trace as _trace
from repro.obs.metrics import METRICS
from repro.storage.buffer import BufferPool

#: Environment variable selecting the default join block size.
JOIN_BLOCK_ENV = "REPRO_JOIN_BLOCK"

#: Join kinds :meth:`BlockJoinExecutor.run_outer` dispatches on.
JOIN_KINDS = ("petj", "pej_top_k", "dstj")

#: Process-local override installed by :func:`join_block_override`.
_OVERRIDE: int | None = None


def resolve_join_block(block: int | None = None) -> int:
    """The effective join block size: explicit arg > override > env > 1.

    An unset / empty / ``off`` environment value means block size 1 —
    the per-probe protocol, which is always the I/O baseline.  A
    malformed ``REPRO_JOIN_BLOCK`` raises a
    :class:`~repro.core.exceptions.ConfigError` naming the variable
    (see :mod:`repro.core.config`).
    """
    if block is not None:
        return parse_int_knob(block, "join block size", minimum=1)
    if _OVERRIDE is not None:
        return _OVERRIDE
    value = read_env_int(
        JOIN_BLOCK_ENV, minimum=1, special={"off": 1, "default": 1}
    )
    return 1 if value is None else value


@contextmanager
def join_block_override(block: int):
    """Scope a join block size to a block (tests and worker processes)."""
    global _OVERRIDE
    block = parse_int_knob(block, "join block size", minimum=1)
    previous = _OVERRIDE
    _OVERRIDE = block
    try:
        yield
    finally:
        _OVERRIDE = previous


def _block_begin(join_kind: str, block: int, size: int, **fields) -> None:
    METRICS.inc("join.block_begin")
    tracer = _trace.ACTIVE
    if tracer is not None:
        tracer.event(
            "join.block_begin",
            join_kind=join_kind,
            block=block,
            size=size,
            **fields,
        )


def _block_end(
    join_kind: str, block: int, pairs: int, shared_pages: int
) -> None:
    METRICS.inc("join.block_end")
    tracer = _trace.ACTIVE
    if tracer is not None:
        tracer.event(
            "join.block_end",
            join_kind=join_kind,
            block=block,
            pairs=pairs,
            shared_pages=shared_pages,
        )


def _tau_raised(left_tid: int, tau: float) -> None:
    METRICS.inc("join.tau_raised")
    tracer = _trace.ACTIVE
    if tracer is not None:
        tracer.event("join.tau_raised", left_tid=left_tid, tau=tau)


def _materialize_outer(left: UncertainRelation) -> list:
    return [(tid, left.uda_of(tid)) for tid in left.tids()]


class BlockJoinExecutor:
    """Index-nested-loop joins over blocks of the outer relation.

    Parameters
    ----------
    right:
        The inner relation (also the naive executor when no index is
        given).
    right_index:
        Optional index over ``right`` (inverted index or PDR-tree);
        probes go to it when present, mirroring the ``right_index``
        argument of :mod:`repro.core.joins`.
    strategy:
        Inverted-index search strategy for probes (must be ``None``
        for other inners, mirroring :class:`BatchExecutor`).
    block_size:
        Outer tuples per block; ``None`` consults
        :func:`resolve_join_block`.
    pool_size:
        ``None`` probes against whatever pool is currently installed on
        the inner index — the per-probe join's protocol, shared across
        all probes.  An integer installs one fresh
        :class:`BufferPool` of that many frames per *block* (so block
        size 1 gives the bench harness's fresh-pool-per-probe
        protocol).
    pin_reserve:
        Frames the shared-head prefetch must leave un-pinned.
    adaptive_tau:
        Enable adaptive threshold propagation for :meth:`pej_top_k`.
        ``None`` enables it exactly when ``block_size > 1``, so the
        default block-1 configuration stays bit-identical to the
        per-probe join.
    """

    def __init__(
        self,
        right: UncertainRelation,
        right_index=None,
        *,
        strategy: str | None = None,
        block_size: int | None = None,
        pool_size: int | None = None,
        pin_reserve: int = DEFAULT_PIN_RESERVE,
        adaptive_tau: bool | None = None,
    ) -> None:
        self.right = right
        self.right_index = right_index
        self.inner = right_index if right_index is not None else right
        if strategy is not None and not isinstance(
            self.inner, ProbabilisticInvertedIndex
        ):
            raise QueryError("only the inverted index takes a search strategy")
        if pin_reserve < 0:
            raise QueryError(f"pin_reserve must be >= 0, got {pin_reserve}")
        if pool_size is not None and pool_size < 1:
            raise QueryError(f"pool_size must be >= 1, got {pool_size}")
        self.strategy = strategy
        self.block_size = resolve_join_block(block_size)
        self.pool_size = pool_size
        self.pin_reserve = pin_reserve
        self.adaptive_tau = (
            self.block_size > 1 if adaptive_tau is None else bool(adaptive_tau)
        )

    # -- public API ---------------------------------------------------------

    def petj(self, left: UncertainRelation, threshold: float) -> JoinResult:
        """Block PETJ; same contract as :func:`repro.core.joins.petj`."""
        if not 0.0 < threshold <= 1.0:
            raise QueryError(
                f"join threshold must lie in (0, 1], got {threshold}"
            )
        if self._legacy():
            return _legacy_petj(
                left, self.right, threshold, right_index=self.right_index
            )
        _join_begin("petj", threshold=threshold)
        pairs, stats, probes = self.run_outer(
            "petj", _materialize_outer(left), threshold=threshold
        )
        _join_end("petj", pairs=len(pairs), probes=probes)
        return JoinResult(pairs, stats, probes)

    def pej_top_k(self, left: UncertainRelation, k: int) -> JoinResult:
        """Block PEJ-top-k; same contract as
        :func:`repro.core.joins.pej_top_k`."""
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        if self._legacy():
            return _legacy_pej_top_k(
                left, self.right, k, right_index=self.right_index
            )
        _join_begin("pej_top_k", k=k)
        pairs, stats, probes = self.run_outer(
            "pej_top_k", _materialize_outer(left), k=k
        )
        _join_end("pej_top_k", pairs=len(pairs), probes=probes)
        return JoinResult(pairs, stats, probes)

    def dstj(
        self,
        left: UncertainRelation,
        threshold: float,
        divergence: str = "l1",
    ) -> JoinResult:
        """Block DSTJ; same contract as :func:`repro.core.joins.dstj`."""
        if threshold < 0.0:
            raise QueryError(
                f"DSTJ threshold must be >= 0, got {threshold}"
            )
        if self._legacy():
            return _legacy_dstj(
                left,
                self.right,
                threshold,
                divergence=divergence,
                right_index=self.right_index,
            )
        _join_begin("dstj", threshold=threshold)
        pairs, stats, probes = self.run_outer(
            "dstj",
            _materialize_outer(left),
            threshold=threshold,
            divergence=divergence,
        )
        _join_end("dstj", pairs=len(pairs), probes=probes)
        return JoinResult(pairs, stats, probes)

    def run_outer(
        self,
        kind: str,
        outer: list,
        *,
        threshold: float | None = None,
        k: int | None = None,
        divergence: str = "l1",
    ) -> tuple[list[JoinPair], QueryStats, int]:
        """Engine entry on an explicit ``(tid, uda)`` outer list.

        Parallel workers call this directly with their chunk (chunk tids
        are the original outer tids, which a relation's 0-based
        ``tids()`` could not express).  Returns finalized pairs (sorted;
        top-k truncated), merged stats, and the probe count — without
        the ``join.begin`` / ``join.end`` bracket the public methods
        add.
        """
        if kind == "petj":
            if threshold is None:
                raise QueryError("petj requires a threshold")
            return self._run_petj(outer, threshold)
        if kind == "pej_top_k":
            if k is None:
                raise QueryError("pej_top_k requires k")
            return self._run_top_k(outer, k)
        if kind == "dstj":
            if threshold is None:
                raise QueryError("dstj requires a threshold")
            return self._run_dstj(outer, threshold, divergence)
        raise QueryError(f"unknown join kind {kind!r}")

    # -- internals ----------------------------------------------------------

    def _legacy(self) -> bool:
        """True when the configuration is exactly the per-probe join."""
        return (
            self.block_size == 1
            and self.pool_size is None
            and not self.adaptive_tau
        )

    def _inverted(self) -> bool:
        return isinstance(self.inner, ProbabilisticInvertedIndex)

    def _blocks(self, outer: list):
        for start in range(0, len(outer), self.block_size):
            yield outer[start : start + self.block_size]

    def _fresh_pool(self) -> None:
        if self.pool_size is None:
            return
        disk = getattr(self.inner, "disk", None)
        if disk is not None:
            self.inner.pool = BufferPool(disk, self.pool_size)

    def _execute(self, query):
        if self._inverted():
            return self.inner.execute(
                query, strategy=self.strategy or "highest_prob_first"
            )
        return self.inner.execute(query)

    def _run_petj(self, outer, threshold):
        stats = QueryStats()
        pairs: list[JoinPair] = []
        probes = 0
        shared = self._inverted()
        for ordinal, block in enumerate(self._blocks(outer)):
            self._fresh_pool()
            if shared and len(block) > 1:
                block_pairs = self._petj_block_shared(
                    ordinal, block, threshold, stats
                )
            else:
                block_pairs = self._probe_block(
                    "petj",
                    ordinal,
                    block,
                    stats,
                    lambda uda: EqualityThresholdQuery(uda, threshold),
                )
            pairs.extend(block_pairs)
            probes += len(block)
        return sorted(pairs), stats, probes

    def _run_top_k(self, outer, k):
        stats = QueryStats()
        heap = BoundedPairHeap(k)
        probes = 0
        for ordinal, block in enumerate(self._blocks(outer)):
            self._fresh_pool()
            self._probe_block(
                "pej_top_k",
                ordinal,
                block,
                stats,
                lambda uda: EqualityTopKQuery(uda, k),
                heap=heap,
            )
            probes += len(block)
        return heap.sorted_pairs(), stats, probes

    def _run_dstj(self, outer, threshold, divergence):
        stats = QueryStats()
        pairs: list[JoinPair] = []
        probes = 0
        for ordinal, block in enumerate(self._blocks(outer)):
            self._fresh_pool()
            pairs.extend(
                self._probe_block(
                    "dstj",
                    ordinal,
                    block,
                    stats,
                    lambda uda: SimilarityThresholdQuery(
                        uda, threshold, divergence
                    ),
                )
            )
            probes += len(block)
        return sorted(pairs), stats, probes

    def _probe_block(
        self,
        join_kind: str,
        ordinal: int,
        block: list,
        stats: QueryStats,
        make_query,
        *,
        heap: BoundedPairHeap | None = None,
    ) -> list[JoinPair]:
        """Grouped per-probe execution of one block.

        Probes run in shared-item order against the block's pool, with
        shared head pages pinned and random-access decodes memoized.
        When ``heap`` is given (top-k), matches feed the heap and the
        adaptive ``tau_floor`` is propagated into each probe.
        """
        queries = [make_query(uda) for _, uda in block]
        inverted = self._inverted()
        begin_fields: dict = {"mode": "probe"}
        if self.strategy is not None:
            begin_fields["strategy"] = self.strategy
        _block_begin(join_kind, ordinal, len(block), **begin_fields)
        grouped = inverted and len(block) > 1
        if grouped:
            order, counts = plan_shared_order(queries, self.inner.domain_size)
            scope = self.inner.shared_scan()
        else:
            order = list(range(len(block)))
            counts = None
            scope = nullcontext()
        pairs: list[JoinPair] = []
        produced = 0
        pinned: list[int] = []
        try:
            with scope:
                if counts is not None and self.strategy != "row_pruning":
                    pinned = prefetch_shared_heads(
                        self.inner,
                        self.inner.pool,
                        counts,
                        pin_reserve=self.pin_reserve,
                        event_kind="join.shared_page",
                        count_field="probes",
                    )
                for position in order:
                    left_tid, _ = block[position]
                    _join_probe(left_tid)
                    floor = (
                        heap.kth_score()
                        if heap is not None and inverted and self.adaptive_tau
                        else 0.0
                    )
                    if floor > 0.0:
                        _tau_raised(left_tid, floor)
                        result = self.inner.execute(
                            queries[position],
                            strategy=self.strategy or "highest_prob_first",
                            tau_floor=floor,
                        )
                    else:
                        result = self._execute(queries[position])
                    stats.merge(result.stats)
                    for match in result:
                        pair = JoinPair(
                            left_tid=left_tid,
                            right_tid=match.tid,
                            score=match.score,
                        )
                        produced += 1
                        if heap is not None:
                            heap.push(pair)
                        else:
                            pairs.append(pair)
        finally:
            for page_id in pinned:
                self.inner.pool.unpin_page(page_id)
        _block_end(join_kind, ordinal, produced, len(pinned))
        return pairs

    def _petj_block_shared(
        self, ordinal: int, block: list, threshold: float, stats: QueryStats
    ) -> list[JoinPair]:
        """Score a whole PETJ block from one pass over its posting lists.

        Every posting list touched by the block is read in full exactly
        once; each (outer row, inner tuple) score is the ``fsum`` of the
        same ``q_prob * s_prob`` product multiset a per-probe
        verification would sum, so scores — and therefore the pair set
        under ``score >= threshold`` — are bit-identical to per-probe
        execution.  No random accesses are issued.
        """
        index = self.inner
        begin_fields: dict = {"mode": "shared-scan"}
        if self.strategy is not None:
            begin_fields["strategy"] = self.strategy
        _block_begin("petj", ordinal, len(block), **begin_fields)
        item_rows: dict[int, list[tuple[int, float]]] = {}
        for row, (left_tid, uda) in enumerate(block):
            _join_probe(left_tid)
            for item, q_prob in uda.pairs():
                item_rows.setdefault(item, []).append((row, q_prob))
        row_runs: list[int] = []
        tid_runs: list = []
        weighted_runs: list = []
        for item in sorted(item_rows):
            posting_list = index.posting_list(item)
            if posting_list is None:
                continue
            stats.nodes_visited += 1
            tids, probs = posting_list.read_all()
            stats.entries_scanned += len(tids)
            for row, q_prob in item_rows[item]:
                row_runs.append(row)
                tid_runs.append(tids)
                weighted_runs.append(q_prob * probs)
        if kernels.vectorized():
            rows, right_tids, scores = kernels.block_scores(
                row_runs, tid_runs, weighted_runs
            )
            triples = zip(
                rows.tolist(), right_tids.tolist(), scores.tolist()
            )
        else:
            acc: dict[tuple[int, int], list[float]] = {}
            for row, tids, weighted in zip(row_runs, tid_runs, weighted_runs):
                for tid, product in zip(tids.tolist(), weighted.tolist()):
                    acc.setdefault((row, tid), []).append(product)
            triples = (
                (row, tid, math.fsum(products))
                for (row, tid), products in sorted(acc.items())
            )
        pairs: list[JoinPair] = []
        scored = 0
        for row, right_tid, score in triples:
            scored += 1
            if score >= threshold:
                pairs.append(
                    JoinPair(
                        left_tid=block[row][0],
                        right_tid=right_tid,
                        score=score,
                    )
                )
        stats.candidates_examined += scored
        _block_end("petj", ordinal, len(pairs), 0)
        return pairs


def block_join(
    kind: str,
    left: UncertainRelation,
    right: UncertainRelation,
    *,
    right_index=None,
    threshold: float | None = None,
    k: int | None = None,
    divergence: str = "l1",
    strategy: str | None = None,
    block_size: int | None = None,
    pool_size: int | None = None,
    pin_reserve: int = DEFAULT_PIN_RESERVE,
    adaptive_tau: bool | None = None,
) -> JoinResult:
    """One-shot block join: build an executor and dispatch on ``kind``."""
    executor = BlockJoinExecutor(
        right,
        right_index,
        strategy=strategy,
        block_size=block_size,
        pool_size=pool_size,
        pin_reserve=pin_reserve,
        adaptive_tau=adaptive_tau,
    )
    if kind == "petj":
        if threshold is None:
            raise QueryError("petj requires a threshold")
        return executor.petj(left, threshold)
    if kind == "pej_top_k":
        if k is None:
            raise QueryError("pej_top_k requires k")
        return executor.pej_top_k(left, k)
    if kind == "dstj":
        if threshold is None:
            raise QueryError("dstj requires a threshold")
        return executor.dstj(left, threshold, divergence)
    raise QueryError(f"unknown join kind {kind!r}")


def _partition_outer(outer: list, chunks: int) -> list[list]:
    """Split into at most ``chunks`` contiguous, balanced, non-empty runs."""
    chunks = min(chunks, len(outer))
    size, extra = divmod(len(outer), chunks)
    parts = []
    start = 0
    for i in range(chunks):
        stop = start + size + (1 if i < extra else 0)
        parts.append(outer[start:stop])
        start = stop
    return parts


def _run_join_chunk(
    kind: str,
    chunk: list,
    right: UncertainRelation,
    build_index,
    params: dict,
    plan,
    block_size: int,
    pool_size: int | None,
    strategy: str | None,
    pin_reserve: int,
    adaptive_tau: bool | None,
    kernel: str,
):
    """Worker-process entry: one outer chunk, per-worker fresh index/pools.

    Module-level so :class:`ProcessPoolExecutor` can pickle it.  The
    fault plan, block size, and kernel mode are shipped by value —
    worker processes do not inherit the parent's env/overrides under
    ``spawn``.
    """
    from repro.core.kernels import kernel_override
    from repro.storage.faults import fault_plan

    with fault_plan(plan), kernel_override(kernel):
        index = build_index(right) if build_index is not None else None
        executor = BlockJoinExecutor(
            right,
            index,
            strategy=strategy,
            block_size=block_size,
            pool_size=pool_size,
            pin_reserve=pin_reserve,
            adaptive_tau=adaptive_tau,
        )
        pairs, stats, probes = executor.run_outer(kind, chunk, **params)
    return pairs, stats, probes


def parallel_join(
    kind: str,
    left: UncertainRelation,
    right: UncertainRelation,
    *,
    build_index=None,
    threshold: float | None = None,
    k: int | None = None,
    divergence: str = "l1",
    jobs: int | None = None,
    strategy: str | None = None,
    block_size: int | None = None,
    pool_size: int | None = None,
    pin_reserve: int = DEFAULT_PIN_RESERVE,
    adaptive_tau: bool | None = None,
) -> JoinResult:
    """Run a block join with the outer side partitioned across processes.

    ``build_index`` is a picklable callable ``relation -> index`` (or
    ``None`` for naive inner probes); each worker rebuilds the inner
    index so every chunk gets per-worker fresh pools.  Chunk results
    merge in submission order (stats therefore merge deterministically,
    chunk 0's stop reason winning) and the concatenated pairs get one
    final total-order sort — for top-k, the global top-k is a subset of
    the union of chunk-local top-ks, so truncating the merged sort is
    exact.  Answers are identical to the sequential engine at the same
    block size; only wall-clock changes.  ``jobs`` defaults to
    ``REPRO_JOBS`` / the CPU count, and workers emit no trace records.
    """
    # Imported lazily: repro.bench imports repro.exec at package init.
    from repro.bench.parallel import resolve_jobs
    from repro.core.kernels import kernel_mode
    from repro.storage.faults import active_plan

    if kind not in JOIN_KINDS:
        raise QueryError(f"unknown join kind {kind!r}")
    params: dict = {}
    begin_fields: dict = {}
    if kind in ("petj", "dstj"):
        if threshold is None:
            raise QueryError(f"{kind} requires a threshold")
        params["threshold"] = threshold
        begin_fields["threshold"] = threshold
        if kind == "dstj":
            params["divergence"] = divergence
    else:
        if k is None:
            raise QueryError("pej_top_k requires k")
        params["k"] = k
        begin_fields["k"] = k
    outer = _materialize_outer(left)
    jobs = resolve_jobs(jobs)
    block = resolve_join_block(block_size)
    _join_begin(kind, **begin_fields)
    if jobs <= 1 or len(outer) <= 1:
        executor = BlockJoinExecutor(
            right,
            build_index(right) if build_index is not None else None,
            strategy=strategy,
            block_size=block,
            pool_size=pool_size,
            pin_reserve=pin_reserve,
            adaptive_tau=adaptive_tau,
        )
        pairs, stats, probes = executor.run_outer(kind, outer, **params)
    else:
        plan = active_plan()
        kernel = kernel_mode()
        chunks = _partition_outer(outer, jobs)
        merged: list[JoinPair] = []
        stats = QueryStats()
        probes = 0
        with ProcessPoolExecutor(max_workers=len(chunks)) as executor_pool:
            futures = [
                executor_pool.submit(
                    _run_join_chunk,
                    kind,
                    chunk,
                    right,
                    build_index,
                    params,
                    plan,
                    block,
                    pool_size,
                    strategy,
                    pin_reserve,
                    adaptive_tau,
                    kernel,
                )
                for chunk in chunks
            ]
            for future in futures:
                chunk_pairs, chunk_stats, chunk_probes = future.result()
                merged.extend(chunk_pairs)
                stats.merge(chunk_stats)
                probes += chunk_probes
        pairs = sorted(merged)
        if kind == "pej_top_k":
            del pairs[k:]
    _join_end(kind, pairs=len(pairs), probes=probes)
    return JoinResult(pairs, stats, probes)
