"""Serving-mode execution: the measure/serve protocol split.

The paper's measurement protocol (Section 4) charges every query a
*fresh* 100-frame buffer pool, which is exactly right for reproducing
its I/O figures and exactly wrong for serving traffic: all cache warmth
is discarded between requests, and pool construction sits on the request
path.  :class:`ServingExecutor` makes the protocol an explicit mode:

``mode="measure"``
    Unchanged paper protocol — a fresh pool per query, reads counted
    from pool construction.  Byte-identical to
    :func:`repro.bench.harness.measure_query` and to every committed
    ``BENCH_*.json`` golden; the ``compare_io.py`` regression gate binds
    to this mode only.

``mode="serve"``
    One long-lived shared :class:`~repro.storage.buffer.BufferPool`
    (with its version-keyed decoded-node cache) reused across every
    request, plus a long-lived tuple-decode cache: candidate
    verification decodes the same stored tuples query after query, so
    the decoded sparse arrays are kept across requests (installed on
    the index only while a request executes, validated against the
    index's mutation stamp, and never visible to measurement-mode
    runs borrowing the same index).  Per-request I/O is attributed with the snapshot/delta
    discipline — a :class:`~repro.storage.stats.IOStatistics` /
    tag-counter delta around the request — instead of "reads since the
    pool was built", which is meaningless for a shared pool.  Answers
    (tids, scores, order) are *identical* to measurement mode: pool
    warmth changes which fetches hit, never which pages are logically
    requested or how strategies decide to stop (their Lemma 1 / Lemma 2
    bounds depend on probabilities, not on physical I/O).  Only the read
    *counts* differ, and monotonically: a warm fetch misses only if the
    same cold fetch would have missed, so per-request posting reads are
    <= the cold-pool reads whenever the serving pool is at least as
    large as the per-query pool and the request's working set fits
    (asserted per query by ``benchmarks/bench_abl_serving.py``).

:meth:`ServingExecutor.execute_batch` is the request-coalescing entry
point used by :mod:`repro.serve`: a group of requests that arrived
within one coalescing window executes as a single
:class:`~repro.exec.batch.BatchExecutor` batch over the warm pool —
touched-item grouping, shared-head pinning, and batch-scoped tuple-
decode memoization all apply — while per-request reads are still
captured individually via the :meth:`BatchExecutor._execute_one` hook.

See ``docs/serving.md`` for the full model and
``docs/io-model.md`` for why goldens bind in measurement mode only.
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field

from repro.core.exceptions import QueryError
from repro.core.queries import Query
from repro.core.results import QueryResult
from repro.exec.batch import BatchExecutor
from repro.storage.buffer import DEFAULT_POOL_SIZE, BufferPool

#: The two execution protocols.
MODES = ("measure", "serve")

#: Default frame budget for a long-lived serving pool.  Deliberately
#: larger than the paper's 100-frame per-query allocation: a serving
#: pool is shared by every request, and the warm<=cold read bound holds
#: per-request when the pool comfortably contains each request's working
#: set alongside the hot residue.
DEFAULT_SERVE_POOL_SIZE = 4096

#: Entry cap on the serving tuple-decode cache.  Verification decodes
#: the same stored tuples for query after query, so serve mode keeps
#: the decoded sparse arrays across requests (the tuple-heap analog of
#: the page-level decoded cache).
DEFAULT_TUPLE_CACHE_ENTRIES = 1 << 18


class GenerationalTupleCache:
    """A capacity-bounded decode cache with generation-segmented eviction.

    The previous design cleared the whole cache the moment it crossed
    its entry cap — one request past the boundary, every hot tuple was
    cold again and the warm hit-rate fell off a cliff.  This cache keeps
    two generations instead: inserts go to *current*; when current
    reaches half the capacity it is demoted whole to *previous* (whose
    old contents — entries untouched for a full generation — are the
    ones actually dropped), and a hit in previous promotes the entry
    back into current.  Hot tuples therefore survive every epoch
    boundary, while total residency stays under ``capacity``.

    Duck-types the ``dict`` surface
    :meth:`~repro.invindex.index.ProbabilisticInvertedIndex.fetch_uda_arrays`
    uses on its memo (``get`` / ``__setitem__``), plus ``clear`` for the
    mutation-stamp invalidation.
    """

    __slots__ = ("capacity", "_current", "_previous")

    def __init__(self, capacity: int = DEFAULT_TUPLE_CACHE_ENTRIES) -> None:
        if capacity < 2:
            raise QueryError(f"cache capacity must be >= 2, got {capacity}")
        self.capacity = capacity
        self._current: dict = {}
        self._previous: dict = {}

    def get(self, key, default=None):
        value = self._current.get(key)
        if value is not None:
            return value
        value = self._previous.get(key)
        if value is not None:
            self[key] = value  # promote: hot entries outlive their generation
            return value
        return default

    def __setitem__(self, key, value) -> None:
        if key not in self._current and len(self._current) >= self.capacity // 2:
            self._previous = self._current
            self._current = {}
        self._current[key] = value

    def __contains__(self, key) -> bool:
        return key in self._current or key in self._previous

    def __len__(self) -> int:
        overlap = sum(1 for key in self._previous if key in self._current)
        return len(self._current) + len(self._previous) - overlap

    def clear(self) -> None:
        self._current = {}
        self._previous = {}


@dataclass
class ServedResult:
    """One request's answer plus its attributed physical work."""

    #: The answer — identical across modes for the same query.
    result: QueryResult
    #: Physical page reads this request incurred (stats delta).
    reads: int
    #: Per-tag read breakdown ("postings", "tuples", "pdr-node", ...).
    reads_by_tag: dict[str, int] = field(default_factory=dict)
    #: Buffer-pool fetch counters over the request (warmth telemetry).
    pool_hits: int = 0
    pool_misses: int = 0
    #: The protocol the request ran under ("measure" or "serve").
    mode: str = "serve"
    #: Size of the coalesced batch this request executed in (1 when the
    #: request ran alone).
    coalesced: int = 1

    def __len__(self) -> int:
        return len(self.result)


class _AttributingBatch(BatchExecutor):
    """A batch executor that records per-request stats deltas.

    Within a coalesced batch, queries still execute one at a time, so a
    disk-stats/tag delta around each execution is that request's exact
    physical read bill.  Work the batch performs *between* requests
    (shared-head prefetch pins) is deliberately attributed to no
    request — it is batch overhead, reported at the batch level by the
    server's ``serve.batch`` record.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.attributed: dict[int, tuple[int, dict[str, int], int, int]] = {}

    def _execute_one(self, position: int, query: Query) -> QueryResult:
        disk = self.index.disk
        pool = self.index.pool
        before = disk.stats.snapshot()
        tags_before = disk.snapshot_tags()
        hits_before, misses_before = pool.hits, pool.misses
        result = self._execute(query)
        delta = disk.stats.delta_since(before)
        tags_after = disk.snapshot_tags()
        breakdown = {
            tag: tags_after[tag] - tags_before.get(tag, 0)
            for tag in tags_after
            if tags_after[tag] != tags_before.get(tag, 0)
        }
        self.attributed[position] = (
            delta.reads,
            breakdown,
            pool.hits - hits_before,
            pool.misses - misses_before,
        )
        return result


class ServingExecutor:
    """Execute queries under an explicit measure/serve protocol.

    Parameters
    ----------
    index:
        A :class:`~repro.invindex.index.ProbabilisticInvertedIndex` or
        :class:`~repro.pdrtree.tree.PDRTree`.
    strategy:
        Inverted-index search strategy (must be ``None`` for the
        PDR-tree).
    mode:
        ``"measure"`` (fresh pool per query, the paper's protocol) or
        ``"serve"`` (one shared warm pool for the executor's lifetime).
    pool_size:
        Frames: per-query pools in measure mode (default 100, the
        paper's allocation), the one long-lived pool in serve mode
        (default :data:`DEFAULT_SERVE_POOL_SIZE`).
    pin_reserve:
        Passed through to the coalescing batch executor's prefetch.
    tuple_cache_entries:
        Capacity of the cross-request tuple-decode cache (serve mode;
        default :data:`DEFAULT_TUPLE_CACHE_ENTRIES`).
    """

    def __init__(
        self,
        index,
        *,
        strategy: str | None = None,
        mode: str = "serve",
        pool_size: int | None = None,
        pin_reserve: int | None = None,
        tuple_cache_entries: int | None = None,
    ) -> None:
        if mode not in MODES:
            raise QueryError(f"mode must be one of {MODES}, got {mode!r}")
        self.index = index
        self.strategy = strategy
        self.mode = mode
        if pool_size is None:
            pool_size = (
                DEFAULT_POOL_SIZE if mode == "measure" else DEFAULT_SERVE_POOL_SIZE
            )
        if pool_size < 1:
            raise QueryError(f"pool_size must be >= 1, got {pool_size}")
        self.pool_size = pool_size
        self._pin_reserve = pin_reserve
        #: The long-lived warm pool (serve mode only; None in measure).
        self.pool: BufferPool | None = None
        #: Decoded tuples kept across requests (serve mode, indexes with
        #: :meth:`~repro.invindex.index.ProbabilisticInvertedIndex.shared_scan`).
        #: Installed on the index only *while this executor executes*, so
        #: a measurement borrowing the same index stays byte-identical.
        self.tuple_cache: GenerationalTupleCache | None = None
        self._mutation_stamp: int | None = None
        #: Serve-mode index with ``shared_scan`` but no ``mutations``
        #: stamp: without a stamp a cross-request cache can never be
        #: invalidated, so such an index gets a *per-request* decode memo
        #: only (see :meth:`_decode_scope`).
        self._stampless_scan = False
        if mode == "serve":
            self.pool = BufferPool(index.disk, pool_size)
            index.pool = self.pool
            if hasattr(index, "shared_scan"):
                if hasattr(index, "mutations"):
                    self.tuple_cache = GenerationalTupleCache(
                        DEFAULT_TUPLE_CACHE_ENTRIES
                        if tuple_cache_entries is None
                        else tuple_cache_entries
                    )
                    self._mutation_stamp = index.mutations
                else:
                    self._stampless_scan = True
        # Validates the strategy/index pairing once, up front.
        self._batch_kwargs = dict(
            strategy=strategy, pool_size=pool_size, batch_size=1
        )
        if pin_reserve is not None:
            self._batch_kwargs["pin_reserve"] = pin_reserve
        BatchExecutor(index, **self._batch_kwargs)

    def _decode_scope(self):
        """The tuple-decode cache scope for one request (serve mode).

        Validates the cache against the index's mutation stamp first: an
        insert or delete since the last request clears every entry (a
        tid-level stale read is never possible).  Capacity needs no
        guard here — :class:`GenerationalTupleCache` bounds itself by
        dropping its oldest generation, so crossing an epoch boundary
        costs only the entries nothing touched for a full generation,
        never the warm set.

        An index without a ``mutations`` stamp offers nothing to
        validate against, so it never touches the cross-request cache:
        each request decodes into a fresh memo that dies with the
        request.  (The old behavior — treating a missing stamp as the
        constant ``None`` — made the staleness check vacuously pass
        forever, serving deleted tuples from cache.)
        """
        if self.tuple_cache is None:
            if self._stampless_scan:
                return self.index.shared_scan({})
            return nullcontext()
        stamp = self.index.mutations
        if stamp != self._mutation_stamp:
            self.tuple_cache.clear()
            self._mutation_stamp = stamp
        return self.index.shared_scan(self.tuple_cache)

    # -- single requests -----------------------------------------------------

    def execute(
        self,
        query: Query,
        tau_floor: float = 0.0,
        sketch: str | None = None,
        div_ceiling: float | None = None,
    ) -> ServedResult:
        """Answer one request, attributing its physical reads.

        ``tau_floor`` elevates a top-k query's pruning threshold (the
        shard coordinator's round protocol — docs/sharding.md); the
        indexes validate that it is only supplied for top-k descriptors.
        ``sketch`` / ``div_ceiling`` are the similarity-query analogs
        (docs/sketch-prefilter.md), likewise validated by the indexes.
        In serve mode sketch pages read by exact-mode prefilters stay
        hot in the shared warm pool like every other page.
        """
        if self.mode == "measure":
            # The paper's protocol, verbatim: swap in a fresh pool, then
            # count reads.  Pool construction is setup, not query cost.
            self.index.pool = BufferPool(self.index.disk, self.pool_size)
        else:
            # A foreign pool may have been installed (e.g. a measurement
            # harness borrowed the index); re-attach the warm pool.
            if self.index.pool is not self.pool:
                self.index.pool = self.pool
        pool = self.index.pool
        disk = self.index.disk
        before = disk.stats.snapshot()
        tags_before = disk.snapshot_tags()
        hits_before, misses_before = pool.hits, pool.misses
        with self._decode_scope():
            result = self._execute(query, tau_floor, sketch, div_ceiling)
        delta = disk.stats.delta_since(before)
        tags_after = disk.snapshot_tags()
        return ServedResult(
            result=result,
            reads=delta.reads,
            reads_by_tag={
                tag: tags_after[tag] - tags_before.get(tag, 0)
                for tag in tags_after
                if tags_after[tag] != tags_before.get(tag, 0)
            },
            pool_hits=pool.hits - hits_before,
            pool_misses=pool.misses - misses_before,
            mode=self.mode,
        )

    # -- coalesced batches ---------------------------------------------------

    def execute_batch(self, queries: list[Query]) -> list[ServedResult]:
        """Answer a coalesced group of requests as one batch.

        Serve mode runs the whole group as a single
        :class:`BatchExecutor` batch over the warm pool (touched-item
        grouping, shared-head pinning, batch-scoped tuple memo);
        results align with the input order, mirroring the arrival-order
        demultiplexing contract of :mod:`repro.serve`.  Measure mode
        degenerates to per-query execution — coalescing is a serving
        optimization, never a measurement one.
        """
        if not queries:
            return []
        if self.mode == "measure" or len(queries) == 1:
            return [self.execute(query) for query in queries]
        if self.index.pool is not self.pool:
            self.index.pool = self.pool
        executor = _AttributingBatch(
            self.index, pool=self.pool, **{
                **self._batch_kwargs, "batch_size": len(queries)
            }
        )
        with self._decode_scope():
            results = executor.run(queries)
        served = []
        for position, result in enumerate(results):
            reads, tags, hits, misses = executor.attributed[position]
            served.append(
                ServedResult(
                    result=result,
                    reads=reads,
                    reads_by_tag=tags,
                    pool_hits=hits,
                    pool_misses=misses,
                    mode=self.mode,
                    coalesced=len(queries),
                )
            )
        return served

    # -- mutations -----------------------------------------------------------

    def apply_mutation(self, op: str, *, tid: int | None = None, uda=None) -> int:
        """Apply one mutation to the served index; returns the new stamp.

        ``op`` is ``"insert"`` (needs ``tid`` and ``uda``), ``"delete"``
        (needs ``tid``), or ``"compact"``.  The mutation runs against
        the warm pool, so its dirty pages join the shared working set;
        the bumped ``mutations`` stamp makes the next request's
        :meth:`_decode_scope` drop the tuple-decode cache.  The server
        executes mutations on the same single worker thread as queries
        (one at a time, never interleaved with a batch), which is what
        makes a mutation atomic from every reader's point of view.
        """
        if self.mode == "serve" and self.index.pool is not self.pool:
            self.index.pool = self.pool
        if op == "insert":
            if tid is None or uda is None:
                raise QueryError("insert needs tid and uda")
            self.index.insert(tid, uda)
        elif op == "delete":
            if tid is None:
                raise QueryError("delete needs tid")
            self.index.delete(tid)
        elif op == "compact":
            if not hasattr(self.index, "compact"):
                raise QueryError(
                    f"{type(self.index).__name__} does not support compaction"
                )
            self.index.compact()
        else:
            raise QueryError(f"unknown mutation op {op!r}")
        return int(getattr(self.index, "mutations", 0))

    # -- warm-pool telemetry -------------------------------------------------

    def hit_ratio(self) -> float:
        """The warm pool's hit ratio over the current reporting window."""
        return self.pool.hit_ratio if self.pool is not None else 0.0

    def reset_window(self) -> None:
        """Start a fresh telemetry window (serve mode; no-op in measure).

        Delegates to :meth:`BufferPool.reset_counters
        <repro.storage.buffer.BufferPool.reset_counters>` — resident
        pages and pin state are untouched, so warmth survives the reset.
        """
        if self.pool is not None:
            self.pool.reset_counters()

    def check_quiesced(self) -> None:
        """Assert no pins survive between requests (serving hygiene)."""
        if self.pool is not None:
            pinned = self.pool.pinned_page_ids()
            assert pinned == [], f"pages still pinned at quiesce: {pinned}"
            self.pool.check_invariants()

    # -- internals -----------------------------------------------------------

    def _execute(
        self,
        query: Query,
        tau_floor: float = 0.0,
        sketch: str | None = None,
        div_ceiling: float | None = None,
    ) -> QueryResult:
        from repro.invindex.index import ProbabilisticInvertedIndex

        extra = {}
        if sketch is not None:
            extra["sketch"] = sketch
        if div_ceiling is not None:
            extra["div_ceiling"] = div_ceiling
        if isinstance(self.index, ProbabilisticInvertedIndex):
            return self.index.execute(
                query,
                strategy=self.strategy or "highest_prob_first",
                tau_floor=tau_floor,
                **extra,
            )
        if tau_floor or extra:
            # Only the real executors understand a floor/ceiling;
            # unadorned requests keep working against any index-shaped
            # object (the serving suite exercises minimal stubs).
            return self.index.execute(query, tau_floor=tau_floor, **extra)
        return self.index.execute(query)
