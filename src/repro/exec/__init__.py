"""Multi-query and multi-probe execution engines.

:mod:`repro.exec.batch` amortizes a query workload over per-batch
buffer pools (see ``docs/batch-execution.md``); :mod:`repro.exec.join`
is the block rank-join engine — shared-scan probing, adaptive top-k
thresholds, and parallel outer partitioning (see ``docs/joins.md``);
:mod:`repro.exec.serving` is the measure/serve protocol split — a
long-lived warm pool with per-request stats-delta I/O attribution
(see ``docs/serving.md``).
"""

from repro.exec.batch import (
    BATCH_ENV,
    BatchExecutor,
    batch_override,
    resolve_batch,
)
from repro.exec.join import (
    JOIN_BLOCK_ENV,
    BlockJoinExecutor,
    block_join,
    join_block_override,
    parallel_join,
    resolve_join_block,
)
from repro.exec.serving import (
    DEFAULT_SERVE_POOL_SIZE,
    DEFAULT_TUPLE_CACHE_ENTRIES,
    MODES,
    GenerationalTupleCache,
    ServedResult,
    ServingExecutor,
)

__all__ = [
    "BATCH_ENV",
    "BatchExecutor",
    "batch_override",
    "resolve_batch",
    "JOIN_BLOCK_ENV",
    "BlockJoinExecutor",
    "block_join",
    "join_block_override",
    "parallel_join",
    "resolve_join_block",
    "DEFAULT_SERVE_POOL_SIZE",
    "DEFAULT_TUPLE_CACHE_ENTRIES",
    "GenerationalTupleCache",
    "MODES",
    "ServedResult",
    "ServingExecutor",
]
