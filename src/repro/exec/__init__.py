"""Batched multi-query execution (shared-scan amortization).

See :mod:`repro.exec.batch` for the executor and
``docs/batch-execution.md`` for the cost model.
"""

from repro.exec.batch import (
    BATCH_ENV,
    BatchExecutor,
    batch_override,
    resolve_batch,
)

__all__ = [
    "BATCH_ENV",
    "BatchExecutor",
    "batch_override",
    "resolve_batch",
]
