"""Multi-query and multi-probe execution engines.

:mod:`repro.exec.batch` amortizes a query workload over per-batch
buffer pools (see ``docs/batch-execution.md``); :mod:`repro.exec.join`
is the block rank-join engine — shared-scan probing, adaptive top-k
thresholds, and parallel outer partitioning (see ``docs/joins.md``).
"""

from repro.exec.batch import (
    BATCH_ENV,
    BatchExecutor,
    batch_override,
    resolve_batch,
)
from repro.exec.join import (
    JOIN_BLOCK_ENV,
    BlockJoinExecutor,
    block_join,
    join_block_override,
    parallel_join,
    resolve_join_block,
)

__all__ = [
    "BATCH_ENV",
    "BatchExecutor",
    "batch_override",
    "resolve_batch",
    "JOIN_BLOCK_ENV",
    "BlockJoinExecutor",
    "block_join",
    "join_block_override",
    "parallel_join",
    "resolve_join_block",
]
