"""The online query service: asyncio TCP server over serving-mode execution.

:mod:`repro.serve` keeps an index attached to one long-lived warm
buffer pool (:class:`repro.exec.serving.ServingExecutor`) and exposes it
over a JSON-lines TCP protocol:

- :mod:`repro.serve.protocol` — the wire format (requests, responses,
  query descriptor encoding) shared by server and client;
- :mod:`repro.serve.config` — :class:`ServeConfig` and its
  ``REPRO_SERVE_*`` environment knobs;
- :mod:`repro.serve.server` — :class:`QueryServer`: admission control
  (in-flight cap + bounded queue), per-request deadlines, and request
  coalescing into batched execution;
- :mod:`repro.serve.client` — :class:`ServeClient`, a thin asyncio
  client used by the stress tests and the serving benchmark.

See ``docs/serving.md`` for the full model.
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.config import ServeConfig
from repro.serve.protocol import (
    MUTATION_KINDS,
    Mutation,
    ProtocolError,
    Request,
    decode_line,
    encode_line,
    mutation_from_wire,
    mutation_to_wire,
    query_from_wire,
    query_to_wire,
)
from repro.serve.server import QueryServer

__all__ = [
    "MUTATION_KINDS",
    "Mutation",
    "ProtocolError",
    "QueryServer",
    "Request",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "decode_line",
    "encode_line",
    "mutation_from_wire",
    "mutation_to_wire",
    "query_from_wire",
    "query_to_wire",
]
