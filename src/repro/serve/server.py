"""The admission-controlled, coalescing asyncio query server.

:class:`QueryServer` keeps one index attached to a long-lived warm
buffer pool (via :class:`repro.exec.serving.ServingExecutor`) and
answers the JSON-lines protocol of :mod:`repro.serve.protocol` over
TCP.  Three serving disciplines, in arrival order:

**Admission control.**  A request is admitted only if the in-flight
count (admitted, not yet answered) is under ``max_inflight`` *and* the
wait queue is under ``queue_limit``; otherwise it is answered
``"shed"`` immediately with reason ``"inflight"`` or ``"queue"`` —
overload degrades availability, never correctness.

**Deadlines.**  Each admitted request carries an absolute deadline
(its own ``deadline_ms`` or the config default).  Deadlines are
checked when the batcher dequeues: a request that waited too long is
answered ``"timeout"`` without executing.  Execution is never
preempted — the deadline bounds *queueing*, the dominant delay under
load.

**Coalescing.**  A single batcher task drains the queue: after the
first arrival it waits ``coalesce_ms`` for company, then executes up
to ``coalesce_max`` requests as *one*
:meth:`~repro.exec.serving.ServingExecutor.execute_batch` call —
touched-item grouping, shared-head pinning, and batch tuple-decode
memoization all amortize across the group.  Results demultiplex back
to their requests in arrival order (per-request futures; each
connection writes responses in the order its requests arrived).

Execution runs on one dedicated worker thread
(``ThreadPoolExecutor(max_workers=1)``), so the event loop stays
responsive for admission decisions while queries run, and index/pool
state is only ever touched single-threaded.  All ``serve.*`` trace
records and counters are emitted from the event-loop thread.
"""

from __future__ import annotations

import asyncio
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any

from repro.core.exceptions import QueryError, ReproError
from repro.exec.serving import ServedResult, ServingExecutor
from repro.obs.metrics import METRICS
from repro.obs.trace import active_tracer
from repro.serve.config import ServeConfig
from repro.serve.protocol import (
    ProtocolError,
    Request,
    decode_line,
    encode_line,
    matches_to_wire,
    parse_request,
)

#: Response statuses tallied in :attr:`QueryServer.counters`.
_STATUSES = ("ok", "shed", "timeout", "error")


@dataclass
class _Pending:
    """One admitted request waiting in (or leaving) the batch queue."""

    request: Request
    future: asyncio.Future
    #: Absolute ``loop.time()`` deadline, or None for "no deadline".
    deadline: float | None
    #: The label used in this request's ``serve.request`` trace record.
    label: str = field(default="")

    def __post_init__(self) -> None:
        if not self.label:
            if self.request.mutation is not None:
                self.label = self.request.mutation.op
            else:
                self.label = type(self.request.query).__name__


class QueryServer:
    """Serve one index over TCP with admission control and coalescing.

    Usage::

        server = QueryServer(index, config=ServeConfig(port=0))
        await server.start()
        host, port = server.address
        ...
        await server.stop()

    or as an async context manager.  ``strategy`` rides in
    :class:`ServeConfig`; the executor validates the pairing up front.
    """

    def __init__(self, index, *, config: ServeConfig | None = None) -> None:
        self.config = config or ServeConfig()
        self.executor = ServingExecutor(
            index,
            strategy=self.config.strategy,
            mode=self.config.mode,
            pool_size=self.config.pool_size,
        )
        self._worker = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve"
        )
        self._queue: deque[_Pending] = deque()
        self._wake: asyncio.Event | None = None
        self._inflight = 0
        self._running = False
        self._server: asyncio.AbstractServer | None = None
        self._batcher: asyncio.Task | None = None
        self._handlers: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()
        #: Response tallies plus batch statistics, for the ``stats`` op.
        self.counters: dict[str, int] = {
            **{status: 0 for status in _STATUSES},
            "requests": 0,
            "batches": 0,
            "coalesced": 0,
            "mutations": 0,
        }

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket and start the batcher task."""
        if self._server is not None:
            raise ReproError("server already started")
        self._wake = asyncio.Event()
        self._running = True
        self._server = await asyncio.start_server(
            self._handle, self.config.host, self.config.port
        )
        self._batcher = asyncio.create_task(self._batch_loop())

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (port resolved if config said 0)."""
        if self._server is None:
            raise ReproError("server not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def drain(self) -> None:
        """Wait until every admitted request has been answered."""
        while self._inflight > 0:
            await asyncio.sleep(0.002)

    async def stop(self) -> None:
        """Stop accepting, finish/flush outstanding work, release threads.

        A batch already executing completes and its responses are
        delivered; requests still waiting in the queue are answered
        ``"shed"`` with reason ``"shutdown"``.
        """
        self._running = False
        if self._server is not None:
            self._server.close()
        if self._batcher is not None:
            if self._wake is not None:
                self._wake.set()
            await self._batcher
            self._batcher = None
        while self._queue:
            pending = self._queue.popleft()
            self._finish(
                pending,
                {"id": pending.request.id, "status": "shed",
                 "reason": "shutdown"},
                status="shed",
                reason="shutdown",
            )
        # Reap open connections so no handler task outlives the server
        # (a lingering task trips asyncio's loop-teardown diagnostics).
        for writer in list(self._writers):
            writer.close()
        handlers = [task for task in self._handlers if not task.done()]
        if handlers:
            await asyncio.wait(handlers, timeout=1.0)
            for task in handlers:
                if not task.done():
                    task.cancel()
            await asyncio.gather(*handlers, return_exceptions=True)
        if self._server is not None:
            await self._server.wait_closed()
            self._server = None
        self._worker.shutdown(wait=True)

    async def __aenter__(self) -> "QueryServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- per-connection handling ---------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # Responses must leave in arrival order even though batches
        # resolve out of order across connections: every request gets a
        # future at dispatch time, and this connection's pump awaits
        # them strictly FIFO.
        out: asyncio.Queue = asyncio.Queue()
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        self._writers.add(writer)
        pump = asyncio.create_task(self._pump(out, writer))
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                await out.put(self._dispatch(line))
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            await out.put(None)
            await pump
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writers.discard(writer)
            if task is not None:
                self._handlers.discard(task)

    async def _pump(self, out: asyncio.Queue, writer: asyncio.StreamWriter) -> None:
        while True:
            future = await out.get()
            if future is None:
                return
            payload = await future
            try:
                writer.write(encode_line(payload))
                await writer.drain()
            except (ConnectionError, OSError):
                # Client went away; keep awaiting futures so admitted
                # requests still drain through _finish bookkeeping.
                continue

    # -- dispatch and admission ----------------------------------------------

    def _resolved(self, payload: dict[str, Any]) -> asyncio.Future:
        future = asyncio.get_running_loop().create_future()
        future.set_result(payload)
        return future

    def _dispatch(self, line: bytes) -> asyncio.Future:
        """Parse, admission-check, and enqueue one request line.

        Always returns a future for the response payload, already
        resolved for control ops, sheds, and malformed requests.
        """
        tracer = active_tracer()
        try:
            message = decode_line(line)
        except ProtocolError as exc:
            return self._immediate_error(None, "?", str(exc))
        op = message.get("op")
        if op is not None:
            return self._resolved(self._control(op, message))
        try:
            request = parse_request(message)
        except (ProtocolError, QueryError) as exc:
            return self._immediate_error(
                message.get("id"), str(message.get("kind", "?")), str(exc)
            )
        label = (
            request.mutation.op
            if request.mutation is not None
            else type(request.query).__name__
        )
        reason = None
        if self._inflight >= self.config.max_inflight:
            reason = "inflight"
        elif len(self._queue) >= self.config.queue_limit:
            reason = "queue"
        if reason is not None:
            METRICS.inc(f"serve.shed.{reason}")
            if tracer is not None:
                tracer.event("serve.shed", reason=reason)
            payload = {"id": request.id, "status": "shed", "reason": reason}
            self._record(label, "shed", reason=reason)
            return self._resolved(payload)
        # Admitted: compute the absolute deadline and queue for the
        # batcher.  loop.time() is monotonic, immune to clock steps.
        loop = asyncio.get_running_loop()
        deadline_ms = (
            request.deadline_ms
            if request.deadline_ms is not None
            else self.config.deadline_ms
        )
        deadline = (
            None if deadline_ms is None else loop.time() + deadline_ms / 1000.0
        )
        pending = _Pending(
            request=request, future=loop.create_future(), deadline=deadline
        )
        self._inflight += 1
        self._queue.append(pending)
        assert self._wake is not None
        self._wake.set()
        return pending.future

    def _immediate_error(
        self, request_id, label: str, error: str
    ) -> asyncio.Future:
        payload: dict[str, Any] = {"status": "error", "error": error}
        if request_id is not None:
            payload["id"] = request_id
        self._record(label, "error")
        return self._resolved(payload)

    def _control(self, op: Any, message: dict[str, Any]) -> dict[str, Any]:
        payload: dict[str, Any] = {"op": op, "status": "ok"}
        if "id" in message:
            payload["id"] = message["id"]
        if op == "ping":
            payload["op"] = "pong"
        elif op == "stats":
            payload.update(
                mode=self.config.mode,
                inflight=self._inflight,
                queued=len(self._queue),
                counters=dict(self.counters),
                hit_ratio=self.executor.hit_ratio(),
            )
        elif op == "reset_window":
            self.executor.reset_window()
        else:
            payload.update(status="error", error=f"unknown op {op!r}")
        return payload

    # -- the batcher ---------------------------------------------------------

    async def _batch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        assert self._wake is not None
        while True:
            await self._wake.wait()
            if not self._running:
                return
            if not self._queue:
                self._wake.clear()
                continue
            # (never clear the wake event once stopping: stop() sets it
            # exactly once, and clearing it would deadlock the final
            # `await self._batcher`.)
            # Coalescing window: linger briefly so near-simultaneous
            # arrivals share one batch, unless a full batch is already
            # waiting.
            if (
                self.config.coalesce_ms > 0
                and len(self._queue) < self.config.coalesce_max
            ):
                await asyncio.sleep(self.config.coalesce_ms / 1000.0)
            # Mutations never share a batch: one executes alone on the
            # worker thread, so every query batch observes the index
            # either wholly before or wholly after it (readers can
            # never see a torn write).  Requests carrying a tau_floor,
            # sketch mode, or div_ceiling (shard-coordinator rounds)
            # execute solo too: these are per-request execution state
            # the coalesced batch path does not thread.
            batch: list[_Pending] = []
            while self._queue and len(batch) < self.config.coalesce_max:
                head = self._queue[0]
                if (
                    head.request.mutation is not None
                    or head.request.tau_floor > 0.0
                    or head.request.sketch is not None
                    or head.request.div_ceiling is not None
                ):
                    if not batch:
                        batch.append(self._queue.popleft())
                    break
                batch.append(self._queue.popleft())
            if not self._queue and self._running:
                self._wake.clear()
            now = loop.time()
            live: list[_Pending] = []
            for pending in batch:
                if pending.deadline is not None and now > pending.deadline:
                    self._finish(
                        pending,
                        {"id": pending.request.id, "status": "timeout"},
                        status="timeout",
                    )
                else:
                    live.append(pending)
            if not live:
                continue
            if live[0].request.mutation is not None:
                await self._run_mutation(loop, live[0])
                continue
            queries = [pending.request.query for pending in live]
            # The solo-break above guarantees a floored/sketched request
            # is the only member of its batch.
            head_request = live[0].request
            try:
                served, batch_reads = await loop.run_in_executor(
                    self._worker,
                    self._execute_sync,
                    queries,
                    head_request.tau_floor,
                    head_request.sketch,
                    head_request.div_ceiling,
                )
            except Exception as exc:  # noqa: BLE001 -- answered, not raised
                for pending in live:
                    self._finish(
                        pending,
                        {"id": pending.request.id, "status": "error",
                         "error": str(exc)},
                        status="error",
                    )
                continue
            tracer = active_tracer()
            if tracer is not None:
                tracer.event("serve.batch", size=len(live), reads=batch_reads)
            METRICS.inc("serve.batch")
            self.counters["batches"] += 1
            self.counters["coalesced"] += len(live)
            for pending, result in zip(live, served):
                self._finish(
                    pending,
                    self._ok_payload(pending.request.id, result),
                    status="ok",
                    reads=result.reads,
                    coalesced=result.coalesced,
                    matches=len(result),
                )

    async def _run_mutation(self, loop, pending: _Pending) -> None:
        """Execute one mutation alone on the worker thread and answer it."""
        mutation = pending.request.mutation
        try:
            stamp = await loop.run_in_executor(
                self._worker, self._apply_mutation_sync, mutation
            )
        except Exception as exc:  # noqa: BLE001 -- answered, not raised
            self._finish(
                pending,
                {"id": pending.request.id, "status": "error",
                 "error": str(exc)},
                status="error",
            )
            return
        METRICS.inc("serve.mutation")
        self.counters["mutations"] += 1
        self._finish(
            pending,
            {"id": pending.request.id, "status": "ok",
             "op": mutation.op, "mutations": stamp},
            status="ok",
        )

    def _apply_mutation_sync(self, mutation) -> int:
        """Worker-thread entry: apply one mutation via the executor."""
        return self.executor.apply_mutation(
            mutation.op, tid=mutation.tid, uda=mutation.uda
        )

    def _execute_sync(
        self,
        queries: list,
        tau_floor: float = 0.0,
        sketch: str | None = None,
        div_ceiling: float | None = None,
    ) -> tuple[list[ServedResult], int]:
        """Worker-thread entry: run one coalesced batch, bill its reads."""
        disk = self.executor.index.disk
        before = disk.stats.snapshot()
        if tau_floor > 0.0 or sketch is not None or div_ceiling is not None:
            served = [
                self.executor.execute(
                    queries[0],
                    tau_floor=tau_floor,
                    sketch=sketch,
                    div_ceiling=div_ceiling,
                )
            ]
        else:
            served = self.executor.execute_batch(queries)
        delta = disk.stats.delta_since(before)
        return served, delta.reads

    # -- response bookkeeping ------------------------------------------------

    def _ok_payload(self, request_id, result: ServedResult) -> dict[str, Any]:
        return {
            "id": request_id,
            "status": "ok",
            "matches": matches_to_wire(result.result),
            "reads": result.reads,
            "coalesced": result.coalesced,
            "mode": result.mode,
        }

    def _finish(
        self,
        pending: _Pending,
        payload: dict[str, Any],
        *,
        status: str,
        **trace_fields: Any,
    ) -> None:
        if not pending.future.done():
            pending.future.set_result(payload)
        self._inflight -= 1
        self._record(pending.label, status, **trace_fields)

    def _record(self, label: str, status: str, **trace_fields: Any) -> None:
        """Tally and trace one written response."""
        METRICS.inc(f"serve.request.{status}")
        self.counters[status] += 1
        self.counters["requests"] += 1
        tracer = active_tracer()
        if tracer is not None:
            tracer.event(
                "serve.request", query=label, status=status, **trace_fields
            )
