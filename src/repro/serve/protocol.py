"""The JSON-lines wire protocol shared by server and client.

One request per line, one response per line, UTF-8 JSON with a
trailing ``\\n``.  A request is either a *query*::

    {"id": 7, "kind": "petq", "items": [3, 9], "probs": [0.6, 0.4],
     "threshold": 0.25}

or a *control op* (``{"op": "ping"}``, ``{"op": "stats"}``,
``{"op": "reset_window"}``).  Responses echo the request ``id`` and
carry a ``status``: ``"ok"`` (with ``matches`` as ``[tid, score]``
pairs in presentation order, plus ``reads``/``coalesced``/``mode``),
``"shed"`` (with ``reason``), ``"timeout"``, or ``"error"`` (with
``error``).

Probabilities survive the wire bit-exactly: UDAs quantize to float32 at
construction, and Python's JSON repr round-trips binary floats, so a
query encoded, sent, and decoded scores identically to the original —
which is what lets the stress tests assert byte-level answer identity
across the socket.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from repro.core.exceptions import InvalidDistributionError, ReproError
from repro.core.queries import (
    EqualityQuery,
    EqualityThresholdQuery,
    EqualityTopKQuery,
    Query,
    SimilarityThresholdQuery,
    SimilarityTopKQuery,
    WindowedEqualityQuery,
)
from repro.core.uda import UncertainAttribute
from repro.sketch import MODES as SKETCH_MODES


class ProtocolError(ReproError):
    """A wire message is malformed or names an unknown query kind."""


#: Wire kind -> query class, and the extra scalar fields each carries.
QUERY_KINDS = {
    "peq": (EqualityQuery, ()),
    "petq": (EqualityThresholdQuery, ("threshold",)),
    "topk": (EqualityTopKQuery, ("k",)),
    "wpetq": (WindowedEqualityQuery, ("threshold", "window")),
    "simtq": (SimilarityThresholdQuery, ("threshold", "divergence")),
    "simtopk": (SimilarityTopKQuery, ("k", "divergence")),
}

_CLASS_TO_KIND = {cls: kind for kind, (cls, _) in QUERY_KINDS.items()}

#: Control operations a request may carry instead of a query.
CONTROL_OPS = ("ping", "stats", "reset_window")

#: Mutation operations a request may carry instead of a query::
#:
#:     {"id": 9, "mutate": "insert", "tid": 412,
#:      "items": [3, 9], "probs": [0.6, 0.4]}
#:     {"id": 10, "mutate": "delete", "tid": 412}
#:     {"id": 11, "mutate": "compact"}
#:
#: The ok-response carries ``op`` and the index's new ``mutations``
#: stamp instead of ``matches``/``reads``.
MUTATION_KINDS = ("insert", "delete", "compact")

#: Response statuses.
STATUSES = ("ok", "shed", "timeout", "error")


@dataclass(frozen=True)
class Mutation:
    """A decoded mutation operation."""

    op: str
    tid: int | None = None
    uda: UncertainAttribute | None = None


@dataclass(frozen=True)
class Request:
    """A decoded request: exactly one of ``query`` / ``mutation`` is set."""

    id: int | str
    query: Query | None
    #: Per-request deadline override in ms (``None`` = server default).
    deadline_ms: float | None = None
    mutation: Mutation | None = None
    #: Externally raised top-k pruning floor (the shard coordinator's
    #: global k-th score, pushed back each round — docs/sharding.md).
    #: ``0.0`` means "no elevation" and is the only value legal for
    #: non-top-k kinds.
    tau_floor: float = 0.0
    #: Sketch pre-filter mode override for similarity kinds
    #: (``simtq``/``simtopk`` only — docs/sketch-prefilter.md).
    #: ``None`` defers to the server's resolved ``REPRO_SKETCH`` mode.
    sketch: str | None = None
    #: Global k-th divergence ceiling for ``simtopk`` (the dual of
    #: ``tau_floor``, pushed back by the shard coordinator each round).
    div_ceiling: float | None = None


def query_to_wire(query: Query) -> dict[str, Any]:
    """Encode a query descriptor as wire fields (without ``id``)."""
    kind = _CLASS_TO_KIND.get(type(query))
    if kind is None:
        raise ProtocolError(
            f"unsupported query type {type(query).__name__}"
        )
    _, extras = QUERY_KINDS[kind]
    wire: dict[str, Any] = {
        "kind": kind,
        "items": [int(item) for item in query.q.items],
        "probs": [float(prob) for prob in query.q.probs],
    }
    for name in extras:
        wire[name] = getattr(query, name)
    return wire


def query_from_wire(message: dict[str, Any]) -> Query:
    """Decode wire fields into a query descriptor.

    Raises :class:`ProtocolError` for unknown kinds or missing fields;
    descriptor-level validation errors (bad threshold, empty
    distribution, ...) propagate as the descriptors' own
    :class:`~repro.core.exceptions.QueryError`.
    """
    kind = message.get("kind")
    if kind not in QUERY_KINDS:
        raise ProtocolError(
            f"unknown query kind {kind!r}; expected one of "
            f"{sorted(QUERY_KINDS)}"
        )
    cls, extras = QUERY_KINDS[kind]
    for name in ("items", "probs", *extras):
        if name not in message:
            raise ProtocolError(f"{kind}: missing field {name!r}")
    try:
        uda = UncertainAttribute(message["items"], message["probs"])
    except (TypeError, ValueError, InvalidDistributionError) as exc:
        raise ProtocolError(f"{kind}: bad distribution: {exc}") from exc
    return cls(uda, *[message[name] for name in extras])


def mutation_from_wire(message: dict[str, Any]) -> Mutation:
    """Decode a ``mutate`` request's fields into a :class:`Mutation`."""
    op = message.get("mutate")
    if op not in MUTATION_KINDS:
        raise ProtocolError(
            f"unknown mutation {op!r}; expected one of {MUTATION_KINDS}"
        )
    if op == "compact":
        return Mutation(op=op)
    tid = message.get("tid")
    if not isinstance(tid, int) or isinstance(tid, bool) or tid < 0:
        raise ProtocolError(
            f"{op}: 'tid' must be a non-negative int, got {tid!r}"
        )
    if op == "delete":
        return Mutation(op=op, tid=tid)
    for name in ("items", "probs"):
        if name not in message:
            raise ProtocolError(f"insert: missing field {name!r}")
    try:
        uda = UncertainAttribute(message["items"], message["probs"])
    except (TypeError, ValueError, InvalidDistributionError) as exc:
        raise ProtocolError(f"insert: bad distribution: {exc}") from exc
    return Mutation(op=op, tid=tid, uda=uda)


def mutation_to_wire(mutation: Mutation) -> dict[str, Any]:
    """Encode a mutation as wire fields (without ``id``)."""
    wire: dict[str, Any] = {"mutate": mutation.op}
    if mutation.tid is not None:
        wire["tid"] = int(mutation.tid)
    if mutation.uda is not None:
        wire["items"] = [int(item) for item in mutation.uda.items]
        wire["probs"] = [float(prob) for prob in mutation.uda.probs]
    return wire


def parse_request(message: dict[str, Any]) -> Request:
    """Decode a query- or mutation-request object (already JSON-parsed)."""
    if "id" not in message:
        raise ProtocolError("request is missing 'id'")
    request_id = message["id"]
    if not isinstance(request_id, (int, str)) or isinstance(request_id, bool):
        raise ProtocolError(f"request 'id' must be int or str, got {request_id!r}")
    deadline_ms = message.get("deadline_ms")
    if deadline_ms is not None and (
        isinstance(deadline_ms, bool)
        or not isinstance(deadline_ms, (int, float))
        or deadline_ms < 0
    ):
        raise ProtocolError(
            f"'deadline_ms' must be a non-negative number, got {deadline_ms!r}"
        )
    deadline = None if deadline_ms is None else float(deadline_ms)
    tau_floor = message.get("tau_floor", 0.0)
    if (
        isinstance(tau_floor, bool)
        or not isinstance(tau_floor, (int, float))
        or tau_floor < 0
    ):
        raise ProtocolError(
            f"'tau_floor' must be a non-negative number, got {tau_floor!r}"
        )
    sketch = message.get("sketch")
    if sketch is not None and sketch not in SKETCH_MODES:
        raise ProtocolError(
            f"'sketch' must be one of {SKETCH_MODES}, got {sketch!r}"
        )
    div_ceiling = message.get("div_ceiling")
    if div_ceiling is not None and (
        isinstance(div_ceiling, bool)
        or not isinstance(div_ceiling, (int, float))
        or div_ceiling < 0
    ):
        raise ProtocolError(
            f"'div_ceiling' must be a non-negative number, got "
            f"{div_ceiling!r}"
        )
    if "mutate" in message:
        if tau_floor:
            raise ProtocolError("'tau_floor' is not valid on a mutation")
        if sketch is not None:
            raise ProtocolError("'sketch' is not valid on a mutation")
        if div_ceiling is not None:
            raise ProtocolError("'div_ceiling' is not valid on a mutation")
        return Request(
            id=request_id,
            query=None,
            deadline_ms=deadline,
            mutation=mutation_from_wire(message),
        )
    query = query_from_wire(message)
    if tau_floor and not isinstance(query, EqualityTopKQuery):
        raise ProtocolError(
            f"'tau_floor' only applies to topk requests, got "
            f"{message.get('kind')!r}"
        )
    if sketch is not None and not isinstance(
        query, (SimilarityThresholdQuery, SimilarityTopKQuery)
    ):
        raise ProtocolError(
            f"'sketch' only applies to similarity requests, got "
            f"{message.get('kind')!r}"
        )
    if div_ceiling is not None and not isinstance(
        query, SimilarityTopKQuery
    ):
        raise ProtocolError(
            f"'div_ceiling' only applies to simtopk requests, got "
            f"{message.get('kind')!r}"
        )
    return Request(
        id=request_id,
        query=query,
        deadline_ms=deadline,
        tau_floor=float(tau_floor),
        sketch=sketch,
        div_ceiling=None if div_ceiling is None else float(div_ceiling),
    )


def encode_line(message: dict[str, Any]) -> bytes:
    """Serialize one protocol message as a JSON line."""
    return (
        json.dumps(message, separators=(",", ":"), sort_keys=True) + "\n"
    ).encode("utf-8")


def decode_line(line: bytes | str) -> dict[str, Any]:
    """Parse one protocol line into a message object."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"not valid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(f"message is not an object: {message!r}")
    return message


def matches_to_wire(result) -> list[list[float]]:
    """Presentation-order ``[tid, score]`` pairs for a query result."""
    return [[match.tid, match.score] for match in result.matches]
