"""A thin asyncio client for the :mod:`repro.serve` protocol.

Used by the stress tests and ``benchmarks/bench_abl_serving.py``.  Two
submission styles:

- :meth:`ServeClient.query` — one request, one awaited response.
- :meth:`ServeClient.pipeline` — write a whole workload before reading
  any response.  Because the server answers each connection in arrival
  order, responses come back aligned with the submitted list — and
  because the requests are all queued at once, this is the path that
  actually exercises request coalescing.
"""

from __future__ import annotations

from typing import Any

import asyncio

from repro.core.exceptions import ReproError
from repro.core.queries import Query
from repro.serve.protocol import (
    Mutation,
    ProtocolError,
    decode_line,
    encode_line,
    mutation_to_wire,
    query_to_wire,
)


class ServeError(ReproError):
    """The server answered something other than ``status: ok``."""

    def __init__(self, payload: dict[str, Any]) -> None:
        self.payload = payload
        status = payload.get("status", "?")
        detail = payload.get("reason") or payload.get("error") or ""
        super().__init__(
            f"request {payload.get('id', '?')} failed: {status}"
            + (f" ({detail})" if detail else "")
        )


class ServeClient:
    """One TCP connection to a :class:`repro.serve.server.QueryServer`."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._next_id = 0

    async def connect(self) -> "ServeClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._reader = self._writer = None

    async def __aenter__(self) -> "ServeClient":
        return await self.connect()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- wire helpers --------------------------------------------------------

    def _fresh_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def _encode_query(
        self,
        query: Query,
        deadline_ms: float | None,
        tau_floor: float = 0.0,
        sketch: str | None = None,
        div_ceiling: float | None = None,
    ) -> tuple[int, bytes]:
        request_id = self._fresh_id()
        message = {"id": request_id, **query_to_wire(query)}
        if deadline_ms is not None:
            message["deadline_ms"] = deadline_ms
        if tau_floor:
            message["tau_floor"] = tau_floor
        if sketch is not None:
            message["sketch"] = sketch
        if div_ceiling is not None:
            message["div_ceiling"] = div_ceiling
        return request_id, encode_line(message)

    async def _read_payload(self) -> dict[str, Any]:
        assert self._reader is not None, "client not connected"
        line = await self._reader.readline()
        if not line:
            raise ProtocolError("server closed the connection")
        return decode_line(line)

    async def _send(self, data: bytes) -> None:
        assert self._writer is not None, "client not connected"
        self._writer.write(data)
        await self._writer.drain()

    # -- requests ------------------------------------------------------------

    async def request(
        self,
        query: Query,
        *,
        deadline_ms: float | None = None,
        tau_floor: float = 0.0,
        sketch: str | None = None,
        div_ceiling: float | None = None,
    ) -> dict[str, Any]:
        """Submit one query; return the raw response payload.

        ``deadline_ms`` maps onto the wire deadline: the server answers
        ``"timeout"`` instead of executing if the request waits longer
        than this in its queue.  ``tau_floor`` elevates a topk request's
        pruning threshold (the shard coordinator's round protocol).
        ``sketch`` overrides the server's sketch pre-filter mode on
        similarity requests; ``div_ceiling`` caps a ``simtopk`` request
        at the coordinator's global k-th divergence.
        """
        _, data = self._encode_query(
            query, deadline_ms, tau_floor, sketch, div_ceiling
        )
        await self._send(data)
        return await self._read_payload()

    async def query(
        self,
        query: Query,
        *,
        deadline_ms: float | None = None,
        tau_floor: float = 0.0,
        sketch: str | None = None,
        div_ceiling: float | None = None,
    ) -> dict[str, Any]:
        """Submit one query; raise :class:`ServeError` unless ``ok``."""
        payload = await self.request(
            query,
            deadline_ms=deadline_ms,
            tau_floor=tau_floor,
            sketch=sketch,
            div_ceiling=div_ceiling,
        )
        if payload.get("status") != "ok":
            raise ServeError(payload)
        return payload

    async def pipeline(
        self,
        queries: list[Query],
        *,
        deadline_ms: float | list[float | None] | None = None,
        tau_floors: list[float] | None = None,
    ) -> list[dict[str, Any]]:
        """Submit a workload back-to-back, then collect every response.

        Responses align with ``queries`` by position (the server
        preserves per-connection arrival order).

        ``deadline_ms`` is the per-request timeout surface for pipelined
        use: a scalar applies one wire deadline to every request, a list
        (aligned with ``queries``; ``None`` entries mean "no deadline")
        bounds each request individually — which is how the shard
        coordinator bounds a whole round without hanging on a straggler:
        the server *sheds* a request still queued past its deadline
        (answers ``"timeout"``) rather than executing it.  ``tau_floors``
        optionally carries a per-request pruning floor, aligned the same
        way.
        """
        assert self._writer is not None, "client not connected"
        if isinstance(deadline_ms, list):
            if len(deadline_ms) != len(queries):
                raise ProtocolError(
                    f"deadline_ms list has {len(deadline_ms)} entries for "
                    f"{len(queries)} queries"
                )
            deadlines = deadline_ms
        else:
            deadlines = [deadline_ms] * len(queries)
        if tau_floors is not None and len(tau_floors) != len(queries):
            raise ProtocolError(
                f"tau_floors has {len(tau_floors)} entries for "
                f"{len(queries)} queries"
            )
        expected = []
        for position, query in enumerate(queries):
            request_id, data = self._encode_query(
                query,
                deadlines[position],
                tau_floors[position] if tau_floors is not None else 0.0,
            )
            self._writer.write(data)
            expected.append(request_id)
        await self._writer.drain()
        payloads = []
        for request_id in expected:
            payload = await self._read_payload()
            if payload.get("id") != request_id:
                raise ProtocolError(
                    f"response out of order: expected id {request_id}, "
                    f"got {payload.get('id')!r}"
                )
            payloads.append(payload)
        return payloads

    # -- mutations -----------------------------------------------------------

    async def _mutate(self, mutation: Mutation) -> dict[str, Any]:
        message = {"id": self._fresh_id(), **mutation_to_wire(mutation)}
        await self._send(encode_line(message))
        payload = await self._read_payload()
        if payload.get("status") != "ok":
            raise ServeError(payload)
        return payload

    async def insert(self, tid: int, uda) -> dict[str, Any]:
        """Insert a tuple; the ok-payload carries the ``mutations`` stamp."""
        return await self._mutate(Mutation(op="insert", tid=tid, uda=uda))

    async def delete(self, tid: int) -> dict[str, Any]:
        """Delete a tuple by tid; raises :class:`ServeError` unless ``ok``."""
        return await self._mutate(Mutation(op="delete", tid=tid))

    async def compact(self) -> dict[str, Any]:
        """Ask the server to compact its index's mutable segments."""
        return await self._mutate(Mutation(op="compact"))

    # -- control ops ---------------------------------------------------------

    async def _control(self, op: str) -> dict[str, Any]:
        await self._send(encode_line({"op": op, "id": self._fresh_id()}))
        return await self._read_payload()

    async def ping(self) -> dict[str, Any]:
        return await self._control("ping")

    async def stats(self) -> dict[str, Any]:
        return await self._control("stats")

    async def reset_window(self) -> dict[str, Any]:
        return await self._control("reset_window")
