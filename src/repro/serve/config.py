"""Serving configuration and its ``REPRO_SERVE_*`` environment knobs.

Every knob goes through the shared hardened parsers in
:mod:`repro.core.config`, so a malformed value raises
:class:`repro.core.exceptions.ConfigError` naming the offending
variable instead of crashing the server with a bare ``ValueError``
somewhere inside ``asyncio``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.config import (
    parse_float_knob,
    parse_int_knob,
    read_env_float,
    read_env_int,
)
from repro.core.exceptions import ConfigError
from repro.exec.serving import DEFAULT_SERVE_POOL_SIZE, MODES

#: Environment knobs (all optional; defaults below).
MODE_ENV = "REPRO_SERVE_MODE"
POOL_ENV = "REPRO_SERVE_POOL"
INFLIGHT_ENV = "REPRO_SERVE_INFLIGHT"
QUEUE_ENV = "REPRO_SERVE_QUEUE"
COALESCE_MS_ENV = "REPRO_SERVE_COALESCE_MS"
COALESCE_MAX_ENV = "REPRO_SERVE_COALESCE_MAX"
DEADLINE_MS_ENV = "REPRO_SERVE_DEADLINE_MS"


@dataclass(frozen=True)
class ServeConfig:
    """Tunables for one :class:`repro.serve.server.QueryServer`.

    Attributes
    ----------
    host, port:
        Bind address.  Port 0 asks the OS for an ephemeral port (the
        bound port is reported by ``QueryServer.address`` after start).
    mode:
        ``"serve"`` (warm shared pool — the point of the server) or
        ``"measure"`` (fresh pool per query; useful for differential
        testing against the paper protocol over the same wire).
    pool_size:
        Frame budget for the serving pool (or each per-query pool in
        measure mode).
    max_inflight:
        Admission cap on requests admitted but not yet answered
        (queued + executing).  Arrivals past the cap are shed with
        reason ``"inflight"``.
    queue_limit:
        Bound on the wait queue alone; arrivals finding it full are
        shed with reason ``"queue"``.
    coalesce_ms:
        After the first request of a batch arrives, wait this many
        milliseconds for more arrivals before executing, so near-
        simultaneous requests share one batch (0 disables the wait;
        whatever is queued when the batcher wakes still coalesces).
    coalesce_max:
        Largest batch one execution may group.
    deadline_ms:
        Default per-request deadline, applied when the request carries
        none.  ``None`` means no default deadline.  Deadlines are
        enforced at dequeue time: a request that waited past its
        deadline is answered ``"timeout"`` without executing —
        execution itself is never preempted.
    strategy:
        Inverted-index search strategy (``None`` = index default, and
        required to be ``None`` for a PDR-tree).
    """

    host: str = "127.0.0.1"
    port: int = 0
    mode: str = "serve"
    pool_size: int = DEFAULT_SERVE_POOL_SIZE
    max_inflight: int = 64
    queue_limit: int = 256
    coalesce_ms: float = 2.0
    coalesce_max: int = 32
    deadline_ms: float | None = 1000.0
    strategy: str | None = None

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ConfigError(
                f"{MODE_ENV} must be one of {MODES}, got {self.mode!r}"
            )
        parse_int_knob(self.pool_size, POOL_ENV, minimum=1)
        parse_int_knob(self.max_inflight, INFLIGHT_ENV, minimum=1)
        parse_int_knob(self.queue_limit, QUEUE_ENV, minimum=1)
        parse_float_knob(self.coalesce_ms, COALESCE_MS_ENV, minimum=0.0)
        parse_int_knob(self.coalesce_max, COALESCE_MAX_ENV, minimum=1)
        if self.deadline_ms is not None:
            parse_float_knob(self.deadline_ms, DEADLINE_MS_ENV, minimum=0.0)

    @classmethod
    def from_env(cls, environ=None, **overrides) -> "ServeConfig":
        """Build a config from ``REPRO_SERVE_*`` knobs plus overrides.

        Explicit keyword overrides win over the environment.  The
        deadline knob accepts ``off``/``none`` for "no default
        deadline".
        """
        import os

        env = os.environ if environ is None else environ
        values: dict = {}
        mode = env.get(MODE_ENV)
        if mode is not None:
            values["mode"] = mode.strip().lower()
        pool = read_env_int(POOL_ENV, minimum=1, environ=env)
        if pool is not None:
            values["pool_size"] = pool
        inflight = read_env_int(INFLIGHT_ENV, minimum=1, environ=env)
        if inflight is not None:
            values["max_inflight"] = inflight
        queue = read_env_int(QUEUE_ENV, minimum=1, environ=env)
        if queue is not None:
            values["queue_limit"] = queue
        coalesce_ms = read_env_float(COALESCE_MS_ENV, minimum=0.0, environ=env)
        if coalesce_ms is not None:
            values["coalesce_ms"] = coalesce_ms
        coalesce_max = read_env_int(COALESCE_MAX_ENV, minimum=1, environ=env)
        if coalesce_max is not None:
            values["coalesce_max"] = coalesce_max
        raw_deadline = env.get(DEADLINE_MS_ENV)
        if raw_deadline is not None:
            if raw_deadline.strip().lower() in ("off", "none", ""):
                values["deadline_ms"] = None
            else:
                values["deadline_ms"] = parse_float_knob(
                    raw_deadline, DEADLINE_MS_ENV, minimum=0.0
                )
        values.update(overrides)
        return cls(**values)

    def with_overrides(self, **overrides) -> "ServeConfig":
        """A copy with the given fields replaced (re-validated)."""
        return replace(self, **overrides)
