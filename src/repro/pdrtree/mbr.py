"""Minimum bounding rectangles (MBRs) for distributions.

"The MBR boundary for a page is a vector v = (v1, ..., vN) such that v_i
is the maximum probability of item d_i in any of the UDA indexed in the
subtree of the current page" (Section 3.2).  A :class:`BoundaryVector` is
that vector in sparse form, living in the *scheme space* of the tree's
:class:`~repro.pdrtree.compression.BoundaryCodec` (the raw domain, or the
folded signature space).

The "area" of an MBR is its L1 measure ``sum_i v_i``, the simplest of the
measures the paper suggests; :meth:`area_increase` drives the
minimum-area-increase insert policy and :meth:`dot` is the Lemma 2
pruning bound ``<<c.v, q>>``.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.spatial import distance

from repro.core.divergence import sparse_kl, sparse_l1, sparse_l2
from repro.core.exceptions import QueryError


class BoundaryVector:
    """A sparse, non-negative pointwise-max bound over distributions."""

    __slots__ = ("items", "values")

    def __init__(self, items: np.ndarray, values: np.ndarray) -> None:
        self.items = np.asarray(items, dtype=np.int64)
        self.values = np.asarray(values, dtype=np.float64)

    @classmethod
    def empty(cls) -> "BoundaryVector":
        """The boundary of an empty page (area zero, prunes everything)."""
        return cls(np.empty(0, dtype=np.int64), np.empty(0))

    @classmethod
    def over(cls, members: list[tuple[np.ndarray, np.ndarray]]) -> "BoundaryVector":
        """Pointwise max over sparse ``(items, values)`` vectors."""
        if not members:
            return cls.empty()
        all_items = np.concatenate([items for items, _ in members])
        all_values = np.concatenate([values for _, values in members])
        union, inverse = np.unique(all_items, return_inverse=True)
        maxima = np.zeros(len(union))
        np.maximum.at(maxima, inverse, all_values)
        return cls(union, maxima)

    # -- measures ------------------------------------------------------------

    @property
    def area(self) -> float:
        """The paper's L1 area measure ``sum_i v_i``."""
        return float(self.values.sum())

    def area_increase(self, items: np.ndarray, values: np.ndarray) -> float:
        """Growth in L1 area if this boundary absorbed the given vector.

        Equals ``sum_i max(0, u_i - v_i)`` — zero when the vector already
        fits inside the boundary.
        """
        if len(items) == 0:
            return 0.0
        if len(self.items) == 0:
            current = np.zeros(len(items))
        else:
            positions = np.minimum(
                np.searchsorted(self.items, items), len(self.items) - 1
            )
            matched = self.items[positions] == items
            current = np.where(matched, self.values[positions], 0.0)
        return float(np.maximum(values - current, 0.0).sum())

    def expanded(self, items: np.ndarray, values: np.ndarray) -> "BoundaryVector":
        """A new boundary that also dominates the given vector."""
        return BoundaryVector.over(
            [(self.items, self.values), (items, values)]
        )

    def dominates(self, items: np.ndarray, values: np.ndarray) -> bool:
        """Whether every component of the vector is <= the boundary's."""
        return self.area_increase(items, values) == 0.0

    def dot(self, q_items: np.ndarray, q_values: np.ndarray) -> float:
        """Lemma 2 bound: ``<<v, q>>`` for a (scheme-space) query vector."""
        if len(self.items) == 0 or len(q_items) == 0:
            return 0.0
        common, left, right = np.intersect1d(
            self.items, q_items, assume_unique=True, return_indices=True
        )
        if len(common) == 0:
            return 0.0
        return math.fsum((self.values[left] * q_values[right]).tolist())

    def distance_to(
        self, items: np.ndarray, values: np.ndarray, divergence: str
    ) -> float:
        """Divergence from a vector to this boundary (for clustering).

        For the asymmetric KL the vector is the left argument —
        ``KL(u || boundary)`` — matching "distributional similarity
        measure of u with MBR boundary".  The boundary is normalized to
        unit mass first: "even though an MBR boundary is not a
        probability distribution in the strict sense, we can still apply
        most divergence measures".  Without normalization KL rewards
        whichever boundary is *largest* (its terms go negative), herding
        every insert into one cluster.
        """
        if divergence == "l1":
            return sparse_l1(items, values, self.items, self.values)
        if divergence == "l2":
            return sparse_l2(items, values, self.items, self.values)
        if divergence == "kl":
            total = self.values.sum()
            normalized = self.values / total if total > 0 else self.values
            return sparse_kl(items, values, self.items, normalized)
        raise QueryError(f"unknown divergence {divergence!r} for MBR distance")

    def __len__(self) -> int:
        return len(self.items)

    def __repr__(self) -> str:
        return f"BoundaryVector(nnz={len(self.items)}, area={self.area:.3f})"


def densify(
    members: list[tuple[np.ndarray, np.ndarray]],
) -> tuple[np.ndarray, np.ndarray]:
    """Pack sparse vectors into a dense matrix over their union support.

    Returns ``(matrix, union_items)`` where ``matrix[i]`` is member ``i``
    restricted to the union support.  Distances that only depend on the
    union support (L1, L2, KL with an epsilon floor) can then be computed
    with vectorized operations — the split algorithms rely on this.
    """
    if not members:
        return np.zeros((0, 0)), np.empty(0, dtype=np.int64)
    union = np.unique(np.concatenate([items for items, _ in members]))
    matrix = np.zeros((len(members), len(union)))
    for row, (items, values) in enumerate(members):
        matrix[row, np.searchsorted(union, items)] = values
    return matrix, union


def pairwise_distances(matrix: np.ndarray, divergence: str) -> np.ndarray:
    """All-pairs distance matrix over dense rows (symmetrized for KL)."""
    if divergence == "l1":
        return distance.cdist(matrix, matrix, "cityblock")
    if divergence == "l2":
        return distance.cdist(matrix, matrix, "euclidean")
    if divergence == "kl":
        kl = _kl_rows(matrix, matrix)
        return 0.5 * (kl + kl.T)
    raise QueryError(f"unknown divergence {divergence!r} for pairwise distances")


def rows_to_rows_distance(
    left: np.ndarray, right: np.ndarray, divergence: str
) -> np.ndarray:
    """Distance from each ``left`` row to each ``right`` row.

    For KL, the left rows are the distributions and the right rows the
    cluster boundaries: ``KL(left_i || right_j)``.
    """
    if divergence == "l1":
        return distance.cdist(left, right, "cityblock")
    if divergence == "l2":
        return distance.cdist(left, right, "euclidean")
    if divergence == "kl":
        return _kl_rows(left, right)
    raise QueryError(f"unknown divergence {divergence!r} for row distances")


_KL_EPSILON = 1e-9


def _kl_rows(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """``KL(left_i || right_j)`` over dense rows with an epsilon floor.

    Rows are normalized to unit mass first (clustering inputs may be
    boundary vectors rather than strict distributions; see
    :meth:`BoundaryVector.distance_to`).
    """
    left_mass = np.maximum(left.sum(axis=1, keepdims=True), _KL_EPSILON)
    left = left / left_mass
    right_mass = np.maximum(right.sum(axis=1, keepdims=True), _KL_EPSILON)
    right = right / right_mass
    safe_left = np.maximum(left, _KL_EPSILON)
    log_left = np.where(left > 0.0, np.log(safe_left), 0.0)
    entropy = (left * log_left).sum(axis=1)
    log_right = np.log(np.maximum(right, _KL_EPSILON))
    cross = left @ log_right.T
    return entropy[:, None] - cross
