"""Split strategies for overfull PDR-tree nodes (paper Section 3.2).

"There are two alternative strategies to split an overfull page:
top-down and bottom-up.  In the top-down strategy, we pick two children
MBRs whose boundaries are distributionally farthest from each other ...
With these two serving as the seeds for two clusters, all other UDAs are
inserted into the closer cluster. ...  In the bottom-up strategy, we
begin with each element forming an independent cluster.  In each step
the closest pair of clusters (in terms of their distributional distance)
are merged.  This process stops when only two clusters remain."

Both strategies honour the balance constraint: "no cluster is allowed to
contain more than 3/4 of the total elements".

Objects are split in *scheme space* (UDA projections for leaves, child
boundaries for internal nodes) over the union of their supports, so all
distance work is dense and vectorized.  Figure 10 of the paper compares
the two strategies; :mod:`benchmarks.bench_fig10_split` reproduces it.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import QueryError
from repro.pdrtree.mbr import densify, pairwise_distances, rows_to_rows_distance

#: The paper's occupancy cap for either side of a split.
MAX_FRACTION = 0.75

SparseVector = tuple[np.ndarray, np.ndarray]


def split_objects(
    objects: list[SparseVector],
    strategy: str,
    divergence: str,
) -> tuple[list[int], list[int]]:
    """Partition ``objects`` into two non-empty balanced groups.

    Returns index lists ``(group_a, group_b)``; each group holds at most
    ``MAX_FRACTION`` of the objects.
    """
    if len(objects) < 2:
        raise QueryError(f"cannot split {len(objects)} object(s)")
    if strategy == "top_down":
        return _top_down(objects, divergence)
    if strategy == "bottom_up":
        return _bottom_up(objects, divergence)
    raise QueryError(
        f"unknown split strategy {strategy!r}; expected 'top_down' or "
        "'bottom_up'"
    )


def _cap(total: int) -> int:
    """Maximum group size under the 3/4 occupancy constraint."""
    return max(1, min(total - 1, int(MAX_FRACTION * total)))


def _top_down(objects: list[SparseVector], divergence: str) -> tuple[list[int], list[int]]:
    """Farthest-pair seeds, then closest-seed assignment.

    Follows the paper's description literally: objects are assigned to
    the closer seed in arrival order, switching groups only when the
    preferred one hits the occupancy cap.  (This is exactly the strategy
    whose performance "is caused by outliers in the data that result in
    poor choices for the initial cluster seeds" — Figure 10.)
    """
    matrix, _ = densify(objects)
    total = len(objects)
    distances = pairwise_distances(matrix, divergence)
    seed_a, seed_b = np.unravel_index(np.argmax(distances), distances.shape)
    if seed_a == seed_b:  # all objects identical; fall back to halves
        half = total // 2
        return list(range(half)), list(range(half, total))
    cap = _cap(total)
    group_a = [int(seed_a)]
    group_b = [int(seed_b)]
    rest = [i for i in range(total) if i not in (seed_a, seed_b)]
    to_a = distances[rest, seed_a]
    to_b = distances[rest, seed_b]
    for position, index in enumerate(rest):
        prefers_a = to_a[position] <= to_b[position]
        if prefers_a and len(group_a) < cap:
            group_a.append(index)
        elif not prefers_a and len(group_b) < cap:
            group_b.append(index)
        elif len(group_a) < cap:
            group_a.append(index)
        else:
            group_b.append(index)
    return group_a, group_b


def _bottom_up(objects: list[SparseVector], divergence: str) -> tuple[list[int], list[int]]:
    """Agglomerative merging of closest cluster boundaries down to two.

    Cluster distance is the divergence between the clusters' boundary
    vectors (their pointwise maxima), symmetrized for KL.  Merges that
    would exceed the occupancy cap are skipped.
    """
    matrix, _ = densify(objects)
    total = len(objects)
    cap = _cap(total)
    boundaries = matrix.copy()  # row c: boundary of cluster c
    members: list[list[int] | None] = [[i] for i in range(total)]
    active = np.ones(total, dtype=bool)
    sizes = np.ones(total, dtype=np.int64)
    distances = pairwise_distances(boundaries, divergence)
    np.fill_diagonal(distances, np.inf)
    while int(active.sum()) > 2:
        # Vectorized search for the closest mergeable (cap-respecting) pair.
        size_sum = sizes[:, None] + sizes[None, :]
        invalid = (
            ~active[:, None]
            | ~active[None, :]
            | (size_sum > cap)
        )
        masked = np.where(invalid, np.inf, distances)
        np.fill_diagonal(masked, np.inf)
        flat = int(np.argmin(masked))
        keep, drop = divmod(flat, total)
        if not np.isfinite(masked[keep, drop]):
            break  # only cap-violating merges remain
        if drop < keep:
            keep, drop = drop, keep
        members[keep] = members[keep] + members[drop]
        members[drop] = None
        active[drop] = False
        sizes[keep] += sizes[drop]
        sizes[drop] = 0
        boundaries[keep] = np.maximum(boundaries[keep], boundaries[drop])
        others = np.flatnonzero(active & (np.arange(total) != keep))
        if len(others):
            forward = rows_to_rows_distance(
                boundaries[keep][None, :], boundaries[others], divergence
            )[0]
            if divergence == "kl":
                backward = rows_to_rows_distance(
                    boundaries[others], boundaries[keep][None, :], divergence
                )[:, 0]
                forward = 0.5 * (forward + backward)
            distances[keep, others] = forward
            distances[others, keep] = forward
    groups = [members[c] for c in np.flatnonzero(active) if members[c]]
    if len(groups) == 2:
        return groups[0], groups[1]
    # More than two clusters survive only when every further merge would
    # breach the cap; greedily fold the smallest clusters together.
    groups.sort(key=len)
    group_a: list[int] = []
    for group in groups[:-1]:
        group_a.extend(group)
    return group_a, groups[-1]
