"""Child-selection policies for PDR-tree insertion (paper Section 3.2).

"The following criteria (or combination of these) are used to pick the
best page: (1) Minimum area increase: we pick a page whose area increase
is minimized after insertion of this new UDA; (2) Most similar MBR: we
use [a] distributional similarity measure of u with [the] MBR boundary."

Three policies are provided:

* ``min_area`` — criterion (1), ties broken by smaller current area;
* ``most_similar`` — criterion (2) under the tree's divergence measure;
* ``hybrid`` — the combination: among the children with the minimum area
  increase, pick the distributionally most similar boundary.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import QueryError
from repro.pdrtree.node import ChildEntry

#: Registry of valid policy names.
INSERT_POLICIES = ("min_area", "most_similar", "hybrid")


def choose_child(
    entries: list[ChildEntry],
    items: np.ndarray,
    values: np.ndarray,
    policy: str,
    divergence: str,
) -> int:
    """Index of the best child to receive the (scheme-space) vector."""
    if not entries:
        raise QueryError("cannot choose a child of an empty node")
    if policy == "min_area":
        return _min_area(entries, items, values)
    if policy == "most_similar":
        return _most_similar(entries, items, values, divergence)
    if policy == "hybrid":
        return _hybrid(entries, items, values, divergence)
    known = ", ".join(INSERT_POLICIES)
    raise QueryError(
        f"unknown insert policy {policy!r}; expected one of: {known}"
    )


def _min_area(entries: list[ChildEntry], items: np.ndarray, values: np.ndarray) -> int:
    best = 0
    best_key = (float("inf"), float("inf"))
    for index, entry in enumerate(entries):
        key = (
            entry.boundary.area_increase(items, values),
            entry.boundary.area,
        )
        if key < best_key:
            best_key = key
            best = index
    return best


def _most_similar(
    entries: list[ChildEntry],
    items: np.ndarray,
    values: np.ndarray,
    divergence: str,
) -> int:
    best = 0
    best_distance = float("inf")
    for index, entry in enumerate(entries):
        dist = entry.boundary.distance_to(items, values, divergence)
        if dist < best_distance:
            best_distance = dist
            best = index
    return best


def _hybrid(
    entries: list[ChildEntry],
    items: np.ndarray,
    values: np.ndarray,
    divergence: str,
) -> int:
    increases = [
        entry.boundary.area_increase(items, values) for entry in entries
    ]
    minimum = min(increases)
    best = None
    best_distance = float("inf")
    for index, entry in enumerate(entries):
        if increases[index] > minimum:
            continue
        dist = entry.boundary.distance_to(items, values, divergence)
        if dist < best_distance:
            best_distance = dist
            best = index
    assert best is not None  # at least the argmin-increase child qualifies
    return best
