"""Probabilistic Distribution R-tree (paper Section 3.2)."""

from repro.pdrtree.compression import BoundaryCodec
from repro.pdrtree.insert_policy import INSERT_POLICIES, choose_child
from repro.pdrtree.mbr import BoundaryVector
from repro.pdrtree.split import MAX_FRACTION, split_objects
from repro.pdrtree.tree import PDRTree, PDRTreeConfig

__all__ = [
    "INSERT_POLICIES",
    "MAX_FRACTION",
    "BoundaryCodec",
    "BoundaryVector",
    "PDRTree",
    "PDRTreeConfig",
    "choose_child",
    "split_objects",
]
