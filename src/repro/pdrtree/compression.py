"""MBR boundary compression for the PDR-tree (paper Section 3.2).

"An MBR boundary may be described in terms of |D| floating-point values.
This may be space inefficient if the data domain is large. ... The MBR
description does not need to be precise and can be stored in approximate
form. ... the lossy representation of an MBR boundary vector must be an
over-estimation of the actual values."

A :class:`BoundaryCodec` bundles the paper's two orthogonal approaches:

* **Set-signature folding** — a function ``f : D -> C`` with ``|C| < |D|``
  maps domain items onto a smaller *scheme space*; the boundary stores one
  value per occupied fold class, the class maximum.  (We fold by
  ``item mod |C|`` and project each UDA by summing its mass per class,
  which over-estimates every member probability.)
* **Discretized over-estimation** — each value is rounded *up* to the next
  multiple of ``1 / 2**bits`` and stored in ``bits`` bits (the paper's
  example: 0.62 with 2 bits becomes 0.75).

Either, both, or neither may be active.  The codec also fixes the byte
layout of an encoded boundary and guarantees the over-estimation
invariant end to end, including the float32 narrowing of uncompressed
values (rounded toward +inf so the stored bound never undershoots).
"""

from __future__ import annotations

import struct

import numpy as np

from repro.core.exceptions import QueryError, SerializationError

_HEADER = struct.Struct("<H")
_ITEM = np.dtype("<u4")
_VALUE = np.dtype("<f4")


class BoundaryCodec:
    """Encoding/decoding of MBR boundary vectors, with optional compression.

    Parameters
    ----------
    domain_size:
        Size of the uncompressed domain ``D``.
    fold_size:
        When given, activate set-signature folding onto ``C`` of this
        size (must be smaller than ``domain_size``).
    bits:
        When given, activate discretized over-estimation with this many
        bits per value (one of 2, 4, 8).
    """

    def __init__(
        self,
        domain_size: int,
        fold_size: int | None = None,
        bits: int | None = None,
    ) -> None:
        if domain_size < 1:
            raise QueryError(f"domain_size must be >= 1, got {domain_size}")
        if fold_size is not None and not 1 <= fold_size < domain_size:
            raise QueryError(
                f"fold_size must be in [1, {domain_size}), got {fold_size}"
            )
        if bits is not None and bits not in (2, 4, 8):
            raise QueryError(f"bits must be one of 2, 4, 8; got {bits}")
        self.domain_size = domain_size
        self.fold_size = fold_size
        self.bits = bits

    # -- identity ----------------------------------------------------------

    @property
    def space_size(self) -> int:
        """Size of the scheme space boundaries live in (``|C|`` or ``|D|``)."""
        return self.fold_size if self.fold_size is not None else self.domain_size

    @property
    def tag(self) -> int:
        """A one-byte configuration tag stored in node headers."""
        fold_bit = 1 if self.fold_size is not None else 0
        bits_code = {None: 0, 2: 1, 4: 2, 8: 3}[self.bits]
        return fold_bit | bits_code << 1

    def describe(self) -> str:
        """Human-readable summary, e.g. ``"fold=16, bits=4"``."""
        parts = []
        if self.fold_size is not None:
            parts.append(f"fold={self.fold_size}")
        if self.bits is not None:
            parts.append(f"bits={self.bits}")
        return ", ".join(parts) if parts else "raw"

    # -- projection into scheme space ---------------------------------------

    def fold_item(self, item: int) -> int:
        """The signature function ``f : D -> C`` (identity when unfolded)."""
        if self.fold_size is None:
            return item
        return item % self.fold_size

    def project(
        self, items: np.ndarray, values: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Project a sparse non-negative vector over ``D`` into scheme space.

        Folding takes the *maximum* per fold class: exactly the signature
        semantics the paper gives, ``Pr(c_i) = max{Pr(d_j) : f(d_j) = c_i}``.
        The class maximum dominates every individual component, so folded
        boundaries keep the over-estimation invariant (and stay <= 1).
        Without folding this is the identity.
        """
        if self.fold_size is None:
            return np.asarray(items, dtype=np.int64), np.asarray(
                values, dtype=np.float64
            )
        folded = np.asarray(items, dtype=np.int64) % self.fold_size
        classes, inverse = np.unique(folded, return_inverse=True)
        maxima = np.zeros(len(classes))
        np.maximum.at(maxima, inverse, np.asarray(values, dtype=np.float64))
        return classes, maxima

    def fold_query(
        self, items: np.ndarray, probs: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Project a query distribution for dot products in scheme space.

        Query mass folds by *sum* (every query item scores against its
        class's boundary value), giving
        ``<boundary, folded_q> = sum_i q_i * boundary[f(i)]
        >= sum_i q_i * u_i`` for every member ``u`` — pruning against
        folded boundaries stays correct.
        """
        if self.fold_size is None:
            return np.asarray(items, dtype=np.int64), np.asarray(
                probs, dtype=np.float64
            )
        folded = np.asarray(items, dtype=np.int64) % self.fold_size
        classes, inverse = np.unique(folded, return_inverse=True)
        sums = np.zeros(len(classes))
        np.add.at(sums, inverse, np.asarray(probs, dtype=np.float64))
        return classes, sums

    # -- value quantization ---------------------------------------------------

    def quantize_up(self, values: np.ndarray) -> np.ndarray:
        """Round values up to what the encoding will actually store.

        This is the *logical* quantization: encode → decode is the
        identity on its output.  Values must lie in ``(0, space_size]``
        (folded masses may exceed one; they are clamped to the number of
        fold classes a page can sum to, but in practice stay small).
        """
        values = np.asarray(values, dtype=np.float64)
        if self.bits is None:
            narrowed = values.astype(np.float32).astype(np.float64)
            undershoot = narrowed < values
            if np.any(undershoot):
                narrowed[undershoot] = np.nextafter(
                    narrowed[undershoot].astype(np.float32), np.float32(np.inf)
                ).astype(np.float64)
            return narrowed
        return self._levels(values) / (1 << self.bits)

    def _levels(self, values: np.ndarray) -> np.ndarray:
        """Quantization levels (1-based) for bit-packed storage."""
        scale = 1 << self.bits
        clipped = np.minimum(
            np.maximum(np.asarray(values, dtype=np.float64), 0.0), 1.0
        )
        levels = np.ceil(clipped * scale - 1e-12).astype(np.int64)
        return np.minimum(np.maximum(levels, 1), scale)

    # -- byte layout -----------------------------------------------------------

    def encoded_size(self, count: int) -> int:
        """Size in bytes of an encoded boundary with ``count`` entries."""
        if self.bits is None:
            return _HEADER.size + count * (4 + 4)
        packed = (count * self.bits + 7) // 8
        return _HEADER.size + count * 4 + packed

    def encode(self, items: np.ndarray, values: np.ndarray) -> bytes:
        """Serialize a scheme-space boundary (items ascending)."""
        items = np.asarray(items, dtype=np.int64)
        count = len(items)
        if count > 0xFFFF:
            raise SerializationError(f"boundary has {count} entries; max 65535")
        header = _HEADER.pack(count)
        item_bytes = items.astype(_ITEM).tobytes()
        if self.bits is None:
            quantized = self.quantize_up(values)
            return header + item_bytes + quantized.astype(_VALUE).tobytes()
        levels = self._levels(values) - 1  # store 0-based levels
        per_byte = 8 // self.bits
        padded = np.zeros(
            (count + per_byte - 1) // per_byte * per_byte, dtype=np.uint8
        )
        padded[:count] = levels.astype(np.uint8)
        packed = np.zeros(len(padded) // per_byte, dtype=np.uint8)
        for slot in range(per_byte):
            packed |= padded[slot::per_byte] << (slot * self.bits)
        return header + item_bytes + packed.tobytes()

    def decode(
        self, buffer: bytes | bytearray | memoryview, offset: int = 0
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Decode a boundary; returns ``(items, values, end_offset)``."""
        (count,) = _HEADER.unpack_from(buffer, offset)
        offset += _HEADER.size
        items = np.frombuffer(buffer, dtype=_ITEM, count=count, offset=offset)
        offset += count * 4
        if self.bits is None:
            values = np.frombuffer(
                buffer, dtype=_VALUE, count=count, offset=offset
            ).astype(np.float64)
            offset += count * 4
        else:
            per_byte = 8 // self.bits
            num_bytes = (count + per_byte - 1) // per_byte
            packed = np.frombuffer(
                buffer, dtype=np.uint8, count=num_bytes, offset=offset
            )
            offset += num_bytes
            mask = (1 << self.bits) - 1
            levels = np.empty(num_bytes * per_byte, dtype=np.int64)
            for slot in range(per_byte):
                levels[slot::per_byte] = (packed >> (slot * self.bits)) & mask
            values = (levels[:count] + 1) / (1 << self.bits)
        return items.astype(np.int64), values, offset

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BoundaryCodec):
            return NotImplemented
        return (
            self.domain_size == other.domain_size
            and self.fold_size == other.fold_size
            and self.bits == other.bits
        )

    def __repr__(self) -> str:
        return (
            f"BoundaryCodec(domain_size={self.domain_size}, "
            f"fold_size={self.fold_size}, bits={self.bits})"
        )
