"""On-page layouts for PDR-tree nodes.

PDR nodes hold variable-length entries, so unlike the B+-tree they are
decoded into Python objects on fetch and re-encoded wholesale on update
(CPU cost, never extra I/O).

Leaf layout::

    0  u8   node_type (2)
    1  u8   codec tag (sanity check against the tree's codec)
    2  u16  count
    4  u16  used   (offset one past the last record; enables O(1) appends)
    6  records:  u32 tid, u16 npairs, npairs * (u32 item, f32 prob)
       pairs ascending by item — the UDA "pairs" representation, which
       "also stores the number of pairs in the list"

Internal layout::

    0  u8   node_type (3)
    1  u8   codec tag
    2  u16  count
    4  entries:  u32 child page id, then the codec-encoded boundary
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.core.exceptions import PageError, SerializationError
from repro.pdrtree.compression import BoundaryCodec
from repro.pdrtree.mbr import BoundaryVector
from repro.storage.page import Page

PDR_LEAF = 2
PDR_INTERNAL = 3

LEAF_HEADER_SIZE = 6
INTERNAL_HEADER_SIZE = 4
_LEAF_RECORD_HEADER = struct.Struct("<IH")
_CHILD = struct.Struct("<I")
_PAIRS_DTYPE = np.dtype([("item", "<u4"), ("prob", "<f4")])


@dataclass
class LeafEntry:
    """One stored UDA: tuple id plus its sparse pairs."""

    tid: int
    items: np.ndarray
    probs: np.ndarray

    @property
    def encoded_size(self) -> int:
        return _LEAF_RECORD_HEADER.size + len(self.items) * _PAIRS_DTYPE.itemsize


@dataclass
class ChildEntry:
    """One child reference: page id plus its boundary (scheme space)."""

    child_id: int
    boundary: BoundaryVector

    def encoded_size(self, codec: BoundaryCodec) -> int:
        return _CHILD.size + codec.encoded_size(len(self.boundary))


def leaf_capacity_bytes(page_size: int) -> int:
    """Bytes available for leaf records."""
    return page_size - LEAF_HEADER_SIZE


def leaf_used_bytes(page: Page) -> int:
    """Offset one past the last record of a formatted leaf."""
    return page.read_u16(4)


def _write_leaf_record(page: Page, offset: int, entry: LeafEntry) -> int:
    _LEAF_RECORD_HEADER.pack_into(page.data, offset, entry.tid, len(entry.items))
    pairs = np.empty(len(entry.items), dtype=_PAIRS_DTYPE)
    pairs["item"] = entry.items
    pairs["prob"] = entry.probs
    page.write_bytes(offset + _LEAF_RECORD_HEADER.size, pairs.tobytes())
    return offset + entry.encoded_size


def encode_leaf(page: Page, codec: BoundaryCodec, entries: list[LeafEntry]) -> None:
    """Serialize a leaf node onto ``page``."""
    page.zero()
    page.write_u8(0, PDR_LEAF)
    page.write_u8(1, codec.tag)
    page.write_u16(2, len(entries))
    offset = LEAF_HEADER_SIZE
    for entry in entries:
        if offset + entry.encoded_size > page.size:
            raise SerializationError(
                f"leaf overflow: {len(entries)} entries need more than "
                f"{page.size} bytes"
            )
        offset = _write_leaf_record(page, offset, entry)
    page.write_u16(4, offset)


def append_leaf_record(page: Page, entry: LeafEntry) -> bool:
    """Append one record in place; returns False when it does not fit."""
    if page.read_u8(0) != PDR_LEAF:
        raise PageError(f"page {page.page_id} is not a PDR leaf")
    used = page.read_u16(4)
    if used + entry.encoded_size > page.size:
        return False
    end = _write_leaf_record(page, used, entry)
    page.write_u16(2, page.read_u16(2) + 1)
    page.write_u16(4, end)
    return True


def decode_leaf(page: Page) -> list[LeafEntry]:
    """Deserialize the leaf node stored on ``page``."""
    if page.read_u8(0) != PDR_LEAF:
        raise PageError(f"page {page.page_id} is not a PDR leaf")
    count = page.read_u16(2)
    entries = []
    offset = LEAF_HEADER_SIZE
    # Zero-copy window; .astype below materializes independent arrays.
    buffer = page.view()
    for _ in range(count):
        tid, npairs = _LEAF_RECORD_HEADER.unpack_from(buffer, offset)
        offset += _LEAF_RECORD_HEADER.size
        pairs = np.frombuffer(buffer, dtype=_PAIRS_DTYPE, count=npairs, offset=offset)
        offset += npairs * _PAIRS_DTYPE.itemsize
        entries.append(
            LeafEntry(
                tid=tid,
                items=pairs["item"].astype(np.int64),
                probs=pairs["prob"].astype(np.float64),
            )
        )
    return entries


def encode_internal(
    page: Page, codec: BoundaryCodec, entries: list[ChildEntry]
) -> None:
    """Serialize an internal node onto ``page``."""
    page.zero()
    page.write_u8(0, PDR_INTERNAL)
    page.write_u8(1, codec.tag)
    page.write_u16(2, len(entries))
    offset = INTERNAL_HEADER_SIZE
    for entry in entries:
        encoded = codec.encode(entry.boundary.items, entry.boundary.values)
        end = offset + _CHILD.size + len(encoded)
        if end > page.size:
            raise SerializationError(
                f"internal overflow: {len(entries)} entries need more than "
                f"{page.size} bytes"
            )
        _CHILD.pack_into(page.data, offset, entry.child_id)
        page.write_bytes(offset + _CHILD.size, encoded)
        offset = end


def decode_internal(page: Page, codec: BoundaryCodec) -> list[ChildEntry]:
    """Deserialize the internal node stored on ``page``.

    Decoded boundary values are the codec's over-estimates; re-encoding
    them is idempotent, so boundaries never drift across updates.
    """
    if page.read_u8(0) != PDR_INTERNAL:
        raise PageError(f"page {page.page_id} is not a PDR internal node")
    if page.read_u8(1) != codec.tag:
        raise PageError(
            f"page {page.page_id} was written with codec tag "
            f"{page.read_u8(1)}, expected {codec.tag}"
        )
    count = page.read_u16(2)
    entries = []
    offset = INTERNAL_HEADER_SIZE
    # Zero-copy window; codec.decode materializes via .astype copies.
    buffer = page.view()
    for _ in range(count):
        (child_id,) = _CHILD.unpack_from(buffer, offset)
        offset += _CHILD.size
        items, values, offset = codec.decode(buffer, offset)
        entries.append(
            ChildEntry(child_id=child_id, boundary=BoundaryVector(items, values))
        )
    return entries


def node_kind(page: Page) -> int:
    """The PDR node-type tag of a formatted page."""
    return page.read_u8(0)
