"""The Probabilistic Distribution R-tree (PDR-tree), paper Section 3.2.

Each UDA is stored whole in a leaf page alongside distributionally
similar UDAs; internal nodes hold child page ids with MBR boundary
vectors (component-wise maxima, optionally compressed).  Queries prune
with Lemma 2: a subtree whose boundary satisfies ``<<c.v, q>> < tau``
cannot contain a qualifying tuple.

Configuration (:class:`PDRTreeConfig`) exposes every design axis the
paper evaluates or proposes:

* ``divergence`` — the distributional distance used for clustering
  (Figure 4 compares L1, L2, KL; KL wins);
* ``split_strategy`` — ``top_down`` or ``bottom_up`` (Figure 10;
  bottom-up wins);
* ``insert_policy`` — minimum area increase, most similar MBR, or the
  hybrid combination;
* ``fold_size`` / ``bits`` — the two orthogonal MBR compression schemes.

Top-k queries raise their threshold dynamically and visit children in
greedy descending-bound order ("we can upgrade our threshold quickly by
finding better candidates at the beginning of the search").

As an extension past the paper's equality focus, the tree also answers
distributional-similarity queries (DSTQ / DSQ-top-k) for L1 and L2 with
a sound MBR lower bound (KL admits no such bound and falls back to a
full sweep).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core import kernels
from repro.core.exceptions import (
    KeyNotFoundError,
    QueryError,
    RecordTooLargeError,
)
from repro.core.queries import (
    EqualityQuery,
    EqualityThresholdQuery,
    EqualityTopKQuery,
    Query,
    SimilarityThresholdQuery,
    SimilarityTopKQuery,
    WindowedEqualityQuery,
)
from repro.core.relation import UncertainRelation
from repro.core.results import Match, QueryResult, QueryStats
from repro.core.uda import UncertainAttribute
from repro.obs import trace as _trace
from repro.obs.metrics import METRICS
from repro.pdrtree.compression import BoundaryCodec
from repro.pdrtree.insert_policy import INSERT_POLICIES, choose_child
from repro.pdrtree.mbr import BoundaryVector
from repro.pdrtree.node import (
    INTERNAL_HEADER_SIZE,
    LEAF_HEADER_SIZE,
    PDR_INTERNAL,
    PDR_LEAF,
    ChildEntry,
    LeafEntry,
    append_leaf_record,
    decode_internal,
    decode_leaf,
    encode_internal,
    encode_leaf,
    leaf_used_bytes,
    node_kind,
)
from repro.pdrtree.split import split_objects
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager

#: Safety margin for floating-point pruning bounds (never affects scores).
EPSILON = 1e-10

#: DecodedCache kinds for PDR node decodings.
LEAF_KIND = "pdr-leaf"
INTERNAL_KIND = "pdr-internal"


@dataclass(frozen=True)
class PDRTreeConfig:
    """Build-time knobs of a PDR-tree (defaults are the paper's winners)."""

    insert_policy: str = "hybrid"
    split_strategy: str = "bottom_up"
    divergence: str = "kl"
    fold_size: int | None = None
    bits: int | None = None

    def __post_init__(self) -> None:
        if self.insert_policy not in INSERT_POLICIES:
            raise QueryError(
                f"unknown insert policy {self.insert_policy!r}"
            )
        if self.split_strategy not in ("top_down", "bottom_up"):
            raise QueryError(
                f"unknown split strategy {self.split_strategy!r}"
            )
        if self.divergence not in ("l1", "l2", "kl"):
            raise QueryError(
                f"clustering divergence must be l1, l2 or kl; got "
                f"{self.divergence!r}"
            )


class PDRTree:
    """Probabilistic Distribution R-tree over one uncertain attribute."""

    def __init__(
        self,
        domain_size: int,
        disk: DiskManager | None = None,
        pool: BufferPool | None = None,
        config: PDRTreeConfig | None = None,
    ) -> None:
        self.domain_size = domain_size
        self.config = config if config is not None else PDRTreeConfig()
        self.codec = BoundaryCodec(
            domain_size,
            fold_size=self.config.fold_size,
            bits=self.config.bits,
        )
        self.disk = disk if disk is not None else DiskManager()
        self._pool = pool if pool is not None else BufferPool(self.disk, 4096)
        root = self._pool.new_page(tag="pdr-node")
        encode_leaf(root, self.codec, [])
        self._pool.mark_dirty(root.page_id)
        self.root_page_id = root.page_id
        self.height = 1
        self.num_tuples = 0
        self._leaf_of_tid: dict[int, int] = {}
        #: Whether the last :meth:`load` had to rebuild from leaf pages.
        self.recovered = False
        #: Monotonic mutation counter (insert/delete), the staleness
        #: stamp long-lived caches compare (docs/mutability.md).
        self.mutations = 0
        self._wal = None
        #: LSN of the last write-ahead-log record applied to this tree.
        self.wal_lsn = 0
        #: Optional :class:`~repro.sketch.SketchIndex` enabling sketch
        #: pre-filtered similarity traversals (docs/sketch-prefilter.md).
        self.sketch = None

    # -- cached node access ----------------------------------------------------
    #
    # Decoded nodes live in the pool's DecodedCache, keyed by the page's
    # (id, version).  The cache never bypasses the buffer pool — every
    # access still fetches the page, so I/O accounting is unaffected —
    # and writers re-prime it after each encode (this tree is the only
    # writer), so version bumps strand stale entries rather than losing
    # the decode work.

    def _get_leaf(self, page_id: int) -> list[LeafEntry]:
        page = self._pool.fetch_page(page_id)
        return self._pool.decoded.get_or_decode(LEAF_KIND, page, decode_leaf)

    def _put_leaf(self, page_id: int, entries: list[LeafEntry]) -> None:
        page = self._pool.fetch_page(page_id)
        encode_leaf(page, self.codec, entries)
        self._pool.mark_dirty(page_id)
        self._pool.decoded.put(LEAF_KIND, page, entries)

    def _get_internal(self, page_id: int) -> list[ChildEntry]:
        page = self._pool.fetch_page(page_id)
        return self._pool.decoded.get_or_decode(
            INTERNAL_KIND, page, self._decode_internal
        )

    def _decode_internal(self, page) -> list[ChildEntry]:
        return decode_internal(page, self.codec)

    def _put_internal(self, page_id: int, entries: list[ChildEntry]) -> None:
        page = self._pool.fetch_page(page_id)
        encode_internal(page, self.codec, entries)
        self._pool.mark_dirty(page_id)
        # Prime with the *decoded* entries, not the originals: lossy
        # codecs (discretization) round boundaries on encode, and every
        # reader — cached or not — must see exactly the on-page values,
        # or pruning decisions would depend on the cache being enabled.
        self._pool.decoded.put(
            INTERNAL_KIND, page, self._decode_internal(page)
        )

    # -- buffering ------------------------------------------------------------

    @property
    def pool(self) -> BufferPool:
        """The buffer pool all page access goes through."""
        return self._pool

    @pool.setter
    def pool(self, pool: BufferPool) -> None:
        if pool is self._pool:
            # Serving mode re-installs its warm pool before every batch;
            # a no-op reassign must not flush (and so perturb) the pool.
            return
        if pool.disk is not self.disk:
            raise QueryError("buffer pool must be backed by the tree's disk")
        self._pool.flush_all()  # don't strand dirty pages in the old pool
        self._pool = pool
        if self.sketch is not None:
            self.sketch.pool = pool

    # -- size accounting ---------------------------------------------------------

    def _leaf_fits(self, entries: list[LeafEntry]) -> bool:
        size = LEAF_HEADER_SIZE + sum(entry.encoded_size for entry in entries)
        return size <= self.disk.page_size

    def _internal_fits(self, entries: list[ChildEntry]) -> bool:
        size = INTERNAL_HEADER_SIZE + sum(
            entry.encoded_size(self.codec) for entry in entries
        )
        return size <= self.disk.page_size

    # -- construction ---------------------------------------------------------------

    def build(self, relation: UncertainRelation) -> None:
        """Insert every tuple of ``relation`` (tuple-at-a-time, as the
        dynamic structure the paper describes)."""
        if self.num_tuples:
            raise QueryError("tree already built; create a fresh one")
        if len(relation.domain) != self.domain_size:
            raise QueryError(
                f"relation domain size {len(relation.domain)} != tree "
                f"domain size {self.domain_size}"
            )
        for tid in relation.tids():
            self.insert(tid, relation.uda_of(tid))
        self._pool.flush_all()

    def insert(self, tid: int, uda: UncertainAttribute) -> None:
        """Insert one tuple, expanding boundaries along the descent path.

        If expanding a boundary overflows an internal node, the node is
        split and the descent restarts from the root (each retry performs
        a split, so the loop terminates).
        """
        if tid in self._leaf_of_tid:
            raise QueryError(f"tid {tid} already present")
        entry = LeafEntry(tid=tid, items=uda.items, probs=uda.probs)
        if LEAF_HEADER_SIZE + entry.encoded_size > self.disk.page_size:
            raise RecordTooLargeError(
                f"UDA with {uda.nnz} pairs does not fit in a "
                f"{self.disk.page_size}-byte page"
            )
        lsn = (
            self._wal.append_insert(tid, uda.items, uda.probs)
            if self._wal is not None
            else None
        )
        self._apply_insert(entry, uda)
        if lsn is not None:
            self.wal_lsn = lsn

    def _apply_insert(self, entry: LeafEntry, uda: UncertainAttribute) -> None:
        """Descend-and-place (no WAL write); the paper's insert heuristics
        (:func:`~repro.pdrtree.insert_policy.choose_child`) pick the path."""
        proj_items, proj_values = self.codec.project(uda.items, uda.probs)
        while not self._insert_attempt(entry, proj_items, proj_values):
            pass
        if self.sketch is not None:
            # Sketch the f32-rounded values the leaf page stores (WAL
            # replay funnels through here, so recovery re-sketches
            # identically).
            self.sketch.insert(
                entry.tid,
                np.asarray(uda.items, dtype=np.int64),
                np.asarray(uda.probs, dtype=np.float32).astype(np.float64),
            )
        self.num_tuples += 1
        self.mutations += 1

    def _insert_attempt(
        self,
        entry: LeafEntry,
        proj_items: np.ndarray,
        proj_values: np.ndarray,
    ) -> bool:
        """One descent; returns False when a mid-path split forces a retry."""
        path: list[tuple[int, int]] = []  # (page_id, chosen child index)
        page_id = self.root_page_id
        while True:
            page = self._pool.fetch_page(page_id)
            if node_kind(page) == PDR_LEAF:
                break
            entries = self._get_internal(page_id)
            index = choose_child(
                entries,
                proj_items,
                proj_values,
                self.config.insert_policy,
                self.config.divergence,
            )
            chosen = entries[index]
            if not chosen.boundary.dominates(proj_items, proj_values):
                entries[index] = ChildEntry(
                    child_id=chosen.child_id,
                    boundary=chosen.boundary.expanded(proj_items, proj_values),
                )
                if not self._internal_fits(entries):
                    # The grown boundary no longer fits: split this node
                    # (with the expanded entry, which keeps every boundary
                    # a valid over-estimate) and retry from the root.
                    self._split_internal(page_id, entries, path)
                    return False
                self._put_internal(page_id, entries)
                chosen = entries[index]
            path.append((page_id, index))
            page_id = chosen.child_id
        # Fast path: append the record in place when it fits.  The decoded
        # entry list is popped before the write (which bumps the page
        # version) and re-primed under the new version afterwards, so the
        # decode work survives the append.
        if leaf_used_bytes(page) + entry.encoded_size <= page.size:
            cached = self._pool.decoded.pop(LEAF_KIND, page)
            appended = append_leaf_record(page, entry)
            assert appended
            self._pool.mark_dirty(page_id)
            if cached is not None:
                cached.append(entry)
                self._pool.decoded.put(LEAF_KIND, page, cached)
            self._leaf_of_tid[entry.tid] = page_id
        else:
            self._split_leaf(page_id, self._get_leaf(page_id) + [entry], path)
        return True

    def delete(self, tid: int) -> None:
        """Remove a tuple from its leaf.

        Boundaries are not tightened (they remain valid over-estimates);
        rebuild the tree to re-compact after heavy deletion.
        """
        if tid not in self._leaf_of_tid:
            raise KeyNotFoundError(f"tid {tid} not in tree")
        lsn = (
            self._wal.append_delete(tid) if self._wal is not None else None
        )
        self._apply_delete(tid)
        if lsn is not None:
            self.wal_lsn = lsn

    def _apply_delete(self, tid: int) -> None:
        """Remove a tuple from its leaf (no WAL write)."""
        try:
            page_id = self._leaf_of_tid.pop(tid)
        except KeyError:
            raise KeyNotFoundError(f"tid {tid} not in tree") from None
        entries = [e for e in self._get_leaf(page_id) if e.tid != tid]
        self._put_leaf(page_id, entries)
        if self.sketch is not None:
            self.sketch.delete(tid)
        self.num_tuples -= 1
        self.mutations += 1

    # -- write-ahead log -------------------------------------------------------

    def attach_wal(self, wal, *, replay: bool = True) -> None:
        """Attach a :class:`~repro.wal.WriteAheadLog`; replay its tail.

        Records with ``lsn <= self.wal_lsn`` were absorbed by the image
        this tree was loaded from and are skipped; the rest re-apply in
        order, replayed inserts descending through the same
        ``insert_policy`` heuristics as the originals.  Subsequent
        :meth:`insert`/:meth:`delete` calls log to ``wal`` before
        applying; a torn tail truncated when ``wal`` was opened marks
        this tree :attr:`recovered`.
        """
        self._wal = wal
        if not replay:
            return
        applied = skipped = 0
        for record in wal.replay():
            if record.lsn <= self.wal_lsn:
                skipped += 1
                continue
            if record.items is not None:
                uda = UncertainAttribute(record.items, record.probs)
                entry = LeafEntry(
                    tid=record.tid, items=uda.items, probs=uda.probs
                )
                self._apply_insert(entry, uda)
            else:
                self._apply_delete(record.tid)
            self.wal_lsn = record.lsn
            applied += 1
        if wal.torn:
            self.recovered = True
        METRICS.inc("wal.replay")
        tracer = _trace.ACTIVE
        if tracer is not None:
            tracer.event(
                "wal.replay", applied=applied, skipped=skipped, torn=wal.torn
            )

    # -- splitting ------------------------------------------------------------------

    def _rebalance_bytes(
        self,
        sizes: list[int],
        group_a: list[int],
        group_b: list[int],
        budget: int,
    ) -> tuple[list[int], list[int]]:
        """Shift members so both groups fit their byte budget.

        The split strategies balance *counts* (the paper's 3/4 rule); with
        variable-length records a group can still overflow its page, in
        which case members migrate to the other group, largest first.
        """
        def total(group: list[int]) -> int:
            return sum(sizes[i] for i in group)

        for source, sink in ((group_a, group_b), (group_b, group_a)):
            while total(source) > budget and len(source) > 1:
                largest = max(source, key=lambda i: sizes[i])
                source.remove(largest)
                sink.append(largest)
        if total(group_a) > budget or total(group_b) > budget:
            raise RecordTooLargeError(
                "node split cannot fit either half into a page"
            )
        return group_a, group_b

    def _split_leaf(
        self,
        page_id: int,
        entries: list[LeafEntry],
        path: list[tuple[int, int]],
    ) -> None:
        projections = [
            self.codec.project(entry.items, entry.probs) for entry in entries
        ]
        group_a, group_b = split_objects(
            projections, self.config.split_strategy, self.config.divergence
        )
        sizes = [entry.encoded_size for entry in entries]
        budget = self.disk.page_size - LEAF_HEADER_SIZE
        group_a, group_b = self._rebalance_bytes(sizes, group_a, group_b, budget)
        new_page = self._pool.new_page(tag="pdr-node")
        for target_id, group in (
            (page_id, group_a),
            (new_page.page_id, group_b),
        ):
            members = [entries[i] for i in group]
            self._put_leaf(target_id, members)
            for member in members:
                self._leaf_of_tid[member.tid] = target_id
        boundary_a = BoundaryVector.over([projections[i] for i in group_a])
        boundary_b = BoundaryVector.over([projections[i] for i in group_b])
        self._replace_in_parent(
            path,
            page_id,
            [(page_id, boundary_a), (new_page.page_id, boundary_b)],
        )

    def _split_internal(
        self,
        page_id: int,
        entries: list[ChildEntry],
        path: list[tuple[int, int]],
    ) -> None:
        objects = [
            (entry.boundary.items, entry.boundary.values) for entry in entries
        ]
        group_a, group_b = split_objects(
            objects, self.config.split_strategy, self.config.divergence
        )
        sizes = [entry.encoded_size(self.codec) for entry in entries]
        budget = self.disk.page_size - INTERNAL_HEADER_SIZE
        group_a, group_b = self._rebalance_bytes(sizes, group_a, group_b, budget)
        new_page = self._pool.new_page(tag="pdr-node")
        for target_id, group in (
            (page_id, group_a),
            (new_page.page_id, group_b),
        ):
            self._put_internal(target_id, [entries[i] for i in group])
        boundary_a = BoundaryVector.over([objects[i] for i in group_a])
        boundary_b = BoundaryVector.over([objects[i] for i in group_b])
        self._replace_in_parent(
            path,
            page_id,
            [(page_id, boundary_a), (new_page.page_id, boundary_b)],
        )

    def _replace_in_parent(
        self,
        path: list[tuple[int, int]],
        old_child: int,
        replacements: list[tuple[int, BoundaryVector]],
    ) -> None:
        new_entries = [
            ChildEntry(child_id=child_id, boundary=boundary)
            for child_id, boundary in replacements
        ]
        if not path:
            # The split node was the root: grow a new internal root.
            if not self._internal_fits(new_entries):
                raise RecordTooLargeError(
                    f"an internal node cannot hold two boundary vectors of "
                    f"this domain ({self.domain_size} items) in a "
                    f"{self.disk.page_size}-byte page; enable MBR "
                    "compression (fold_size and/or bits) — see paper "
                    "Section 3.2, 'Compression techniques'"
                )
            root = self._pool.new_page(tag="pdr-node")
            self._put_internal(root.page_id, new_entries)
            self.root_page_id = root.page_id
            self.height += 1
            return
        parent_id, index = path[-1]
        entries = self._get_internal(parent_id)
        if entries[index].child_id != old_child:
            raise QueryError(
                "internal corruption: parent entry does not reference the "
                "split child"
            )
        entries[index : index + 1] = new_entries
        if self._internal_fits(entries):
            self._put_internal(parent_id, entries)
        else:
            self._split_internal(parent_id, entries, path[:-1])

    # -- sketch pre-filtering --------------------------------------------------

    def build_sketch(self, params=None, *, flush: bool = True) -> None:
        """Build (or rebuild) the attached sketch store over the tree.

        Gathers every member by one walk over the leaf pages, then
        sketches in ascending-tid order so the page image is a
        deterministic function of the logical contents.  Probabilities
        are f32-rounded to match what the leaf pages store (what the
        similarity traversals verify against).
        """
        from repro.sketch import SketchIndex

        members: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        for page_id in set(self._leaf_of_tid.values()):
            for entry in self._get_leaf(page_id):
                members[entry.tid] = (entry.items, entry.probs)
        sketch = SketchIndex(self._pool, params)
        for tid in sorted(members):
            items, probs = members[tid]
            sketch.insert(
                tid,
                np.asarray(items, dtype=np.int64),
                np.asarray(probs, dtype=np.float32).astype(np.float64),
            )
        self.sketch = sketch
        if flush:
            self._pool.flush_all()

    def _sketch_plan(self, query, mode: str):
        """Per-tid lower bounds driving a sketch-assisted traversal.

        Returns ``(lb_of_tid, min_lb_of_leaf)`` or ``(None, None)`` in
        ``off`` mode.  A tid the sketch does not know gets ``-inf`` in
        exact mode (never skipped); in approx mode non-candidates get
        ``+inf`` (skipped — that is the bounded-recall trade).
        """
        from repro.sketch.search import NO_SKETCH_ERROR, emit_probe, emit_prune

        if mode == "off":
            return None, None
        if self.sketch is None:
            raise QueryError(NO_SKETCH_ERROR.format(mode=mode))
        emit_probe(mode, query.divergence, self.sketch.num_tuples)
        if mode == "approx":
            allowed = set(self.sketch.lsh_candidates(query.q.items))
            emit_prune(
                len(self._leaf_of_tid) - len(allowed), len(allowed)
            )
            lb_of = {
                tid: (0.0 if tid in allowed else math.inf)
                for tid in self._leaf_of_tid
            }
        else:
            tids, lbs = self.sketch.bounds(query)
            lb_of = dict(zip(tids.tolist(), lbs.tolist()))
        leaf_min: dict[int, float] = {}
        for tid, page_id in self._leaf_of_tid.items():
            lb = lb_of.get(tid, -math.inf)
            current = leaf_min.get(page_id)
            if current is None or lb < current:
                leaf_min[page_id] = lb
        return lb_of, leaf_min

    # -- queries --------------------------------------------------------------------

    def execute(
        self,
        query: Query,
        tau_floor: float = 0.0,
        sketch: str | None = None,
        div_ceiling: float | None = None,
    ) -> QueryResult:
        """Answer any query descriptor of :mod:`repro.core.queries`.

        ``tau_floor`` is an externally supplied lower bound on the
        caller's global k-th score (the rank-join / shard-coordinator
        elevation, mirroring
        :meth:`ProbabilisticInvertedIndex.execute
        <repro.invindex.index.ProbabilisticInvertedIndex.execute>`): the
        top-k traversal prunes against ``max(local tau_k, tau_floor)``
        and may omit matches scoring strictly below the floor.  Only
        meaningful for :class:`EqualityTopKQuery`; must be ``0.0`` for
        every other descriptor, and at ``0.0`` the traversal is
        bit-identical to the classic one.

        ``sketch`` / ``div_ceiling`` are the similarity-query analogs:
        ``sketch`` overrides the resolved ``REPRO_SKETCH`` mode, and
        ``div_ceiling`` caps a :class:`SimilarityTopKQuery` at the shard
        coordinator's global k-th divergence (the dual of ``tau_floor``
        — matches with distance strictly above it may be omitted).  Both
        are rejected on non-similarity descriptors.
        """
        from repro.sketch import resolve_sketch

        similarity = isinstance(
            query, (SimilarityThresholdQuery, SimilarityTopKQuery)
        )
        if sketch is not None and not similarity:
            raise QueryError(
                "sketch mode only applies to similarity queries; got "
                f"{type(query).__name__}"
            )
        if div_ceiling is not None:
            if not isinstance(query, SimilarityTopKQuery):
                raise QueryError(
                    "div_ceiling only applies to similarity top-k "
                    f"queries; got {type(query).__name__}"
                )
            if div_ceiling < 0.0:
                raise QueryError(
                    f"div_ceiling must be >= 0, got {div_ceiling}"
                )
        if tau_floor < 0.0:
            raise QueryError(f"tau_floor must be >= 0, got {tau_floor}")
        if tau_floor > 0.0 and not isinstance(query, EqualityTopKQuery):
            raise QueryError(
                "tau_floor only applies to top-k queries; got "
                f"{type(query).__name__}"
            )
        mode = resolve_sketch(sketch) if similarity else "off"
        tracer = _trace.ACTIVE
        if tracer is not None:
            tracer.event(
                "query.begin",
                structure="pdr-tree",
                query=type(query).__name__,
            )
        result = self._dispatch(query, tau_floor, mode, div_ceiling)
        if tracer is not None:
            tracer.event(
                "query.end", structure="pdr-tree", matches=len(result)
            )
        return result

    def _dispatch(
        self,
        query: Query,
        tau_floor: float = 0.0,
        sketch_mode: str = "off",
        div_ceiling: float | None = None,
    ) -> QueryResult:
        """Route ``query`` to the matching traversal."""
        if isinstance(query, EqualityThresholdQuery):
            return self._petq(query.q, query.threshold)
        if isinstance(query, EqualityTopKQuery):
            return self._peq_top_k(query.q, query.k, tau_floor)
        if isinstance(query, EqualityQuery):
            return self._petq(query.q, float(np.finfo(np.float32).tiny))
        if isinstance(query, SimilarityThresholdQuery):
            return self._dstq(query, sketch_mode)
        if isinstance(query, SimilarityTopKQuery):
            return self._dsq_top_k(query, sketch_mode, div_ceiling)
        if isinstance(query, WindowedEqualityQuery):
            # Lemma 2 holds for any non-negative weight vector, so the
            # expanded windowed query prunes like ordinary PETQ.
            return self._petq(query.expanded(self.domain_size), query.threshold)
        raise QueryError(f"unsupported query type: {type(query).__name__}")

    def _petq(self, q: UncertainAttribute, tau: float) -> QueryResult:
        """Depth-first PETQ with Lemma 2 pruning."""
        stats = QueryStats()
        q_items, q_values = self.codec.fold_query(q.items, q.probs)
        matches: list[Match] = []
        tracer = _trace.ACTIVE
        stack = [self.root_page_id]
        while stack:
            page_id = stack.pop()
            page = self._pool.fetch_page(page_id)
            stats.nodes_visited += 1
            kind = node_kind(page)
            METRICS.inc("pdr.visit")
            if tracer is not None:
                tracer.event(
                    "pdr.visit",
                    page_id=page_id,
                    node="internal" if kind == PDR_INTERNAL else "leaf",
                )
            if kind == PDR_INTERNAL:
                for entry in self._get_internal(page_id):
                    bound = entry.boundary.dot(q_items, q_values)
                    descend = bound >= tau - EPSILON
                    METRICS.inc(
                        "pdr.verdict.descend" if descend else "pdr.verdict.prune"
                    )
                    if tracer is not None:
                        tracer.event(
                            "pdr.verdict",
                            child=entry.child_id,
                            bound=bound,
                            tau=tau,
                            verdict="descend" if descend else "prune",
                        )
                    if descend:
                        stack.append(entry.child_id)
            else:
                for entry in self._get_leaf(page_id):
                    stats.candidates_examined += 1
                    score = q.equality_with_arrays(entry.items, entry.probs)
                    if score >= tau:
                        matches.append(Match(tid=entry.tid, score=score))
        return QueryResult(matches, stats)

    def _peq_top_k(
        self, q: UncertainAttribute, k: int, tau_floor: float = 0.0
    ) -> QueryResult:
        """Greedy depth-first top-k with a dynamically raised threshold.

        ``tau_floor`` elevates the pruning threshold to
        ``max(local tau_k, tau_floor)`` so Lemma 2 can fire before k
        local results exist; a subtree pruned this way holds only
        members scoring below the floor, which the caller's merge
        discards anyway.  At ``0.0`` every branch condition reduces to
        the classic traversal bit-for-bit.
        """
        stats = QueryStats()
        q_items, q_values = self.codec.fold_query(q.items, q.probs)
        found: list[Match] = []

        def visit(page_id: int) -> None:
            page = self._pool.fetch_page(page_id)
            stats.nodes_visited += 1
            kind = node_kind(page)
            METRICS.inc("pdr.visit")
            tracer = _trace.ACTIVE
            if tracer is not None:
                tracer.event(
                    "pdr.visit",
                    page_id=page_id,
                    node="internal" if kind == PDR_INTERNAL else "leaf",
                )
            if kind == PDR_INTERNAL:
                scored = [
                    (entry.boundary.dot(q_items, q_values), entry.child_id)
                    for entry in self._get_internal(page_id)
                ]
                scored.sort(key=lambda pair: -pair[0])
                for idx, (bound, child_id) in enumerate(scored):
                    tau_k = found[k - 1].score if len(found) >= k else 0.0
                    tau_eff = tau_k if tau_k > tau_floor else tau_floor
                    if (
                        len(found) >= k or tau_floor > 0.0
                    ) and bound < tau_eff - EPSILON:
                        # Bounds descend: this sibling and every later one
                        # prune under the threshold frozen at this moment.
                        METRICS.inc("pdr.verdict.prune", len(scored) - idx)
                        if tracer is not None:
                            for later_bound, later_child in scored[idx:]:
                                tracer.event(
                                    "pdr.verdict",
                                    child=later_child,
                                    bound=later_bound,
                                    tau=tau_eff,
                                    verdict="prune",
                                )
                        break
                    METRICS.inc("pdr.verdict.descend")
                    if tracer is not None:
                        tracer.event(
                            "pdr.verdict",
                            child=child_id,
                            bound=bound,
                            tau=tau_eff,
                            verdict="descend",
                        )
                    visit(child_id)
            else:
                for entry in self._get_leaf(page_id):
                    stats.candidates_examined += 1
                    score = q.equality_with_arrays(entry.items, entry.probs)
                    if score > 0.0:
                        found.append(Match(tid=entry.tid, score=score))
                found.sort()
                del found[max(k, 0) + 64 :]  # keep a slack buffer sorted

        visit(self.root_page_id)
        found.sort()
        return QueryResult(found[:k], stats)

    # -- similarity queries (extension) -----------------------------------------------

    def _similarity_bound(
        self,
        boundary: BoundaryVector,
        q_items: np.ndarray,
        q_probs: np.ndarray,
        folded: np.ndarray,
        divergence: str,
    ) -> float:
        """A lower bound on the divergence from q to any member UDA.

        Every member satisfies ``u_i <= boundary[f(i)]``, so
        ``|q_i - u_i| >= max(0, q_i - boundary[f(i)])`` componentwise.
        Sound for L1 and L2; KL has no such bound (returns 0 = no prune).
        """
        if divergence == "kl":
            return 0.0
        positions = np.searchsorted(boundary.items, folded)
        positions = np.clip(positions, 0, max(len(boundary.items) - 1, 0))
        if len(boundary.items) > 0:
            matched = boundary.items[positions] == folded
            bounds = np.where(matched, boundary.values[positions], 0.0)
        else:
            bounds = np.zeros(len(folded))
        deficit = np.maximum(q_probs - bounds, 0.0)
        if divergence == "l1":
            return float(deficit.sum())
        return float(np.sqrt(np.square(deficit).sum()))

    def _dstq(
        self, query: SimilarityThresholdQuery, sketch_mode: str = "off"
    ) -> QueryResult:
        from repro.sketch.search import emit_verify

        stats = QueryStats()
        q = query.q
        lb_of, leaf_min = self._sketch_plan(query, sketch_mode)
        folded = np.array([self.codec.fold_item(int(i)) for i in q.items])
        matches: list[Match] = []
        stack = [self.root_page_id]
        tracer = _trace.ACTIVE
        while stack:
            page_id = stack.pop()
            if (
                leaf_min is not None
                and leaf_min.get(page_id, -math.inf) > query.threshold
            ):
                # Every member's lower bound strictly exceeds the
                # threshold: the whole leaf page is skipped unread.
                continue
            page = self._pool.fetch_page(page_id)
            stats.nodes_visited += 1
            kind = node_kind(page)
            METRICS.inc("pdr.visit")
            if tracer is not None:
                tracer.event(
                    "pdr.visit",
                    page_id=page_id,
                    node="internal" if kind == PDR_INTERNAL else "leaf",
                )
            if kind == PDR_INTERNAL:
                for entry in self._get_internal(page_id):
                    bound = self._similarity_bound(
                        entry.boundary, q.items, q.probs, folded,
                        query.divergence,
                    )
                    if bound <= query.threshold + EPSILON:
                        stack.append(entry.child_id)
            else:
                # Vectorized kernels score decoded entry arrays directly
                # (same sparse divergence on the same floats; the UDA
                # wrapper only re-validated already-valid pages).
                direct = kernels.vectorized()
                for entry in self._get_leaf(page_id):
                    if (
                        lb_of is not None
                        and lb_of.get(entry.tid, -math.inf) > query.threshold
                    ):
                        continue
                    stats.candidates_examined += 1
                    if lb_of is not None:
                        emit_verify(entry.tid)
                    if direct:
                        dist = query.distance_arrays(entry.items, entry.probs)
                    else:
                        uda = UncertainAttribute(entry.items, entry.probs)
                        dist = query.distance(uda)
                    if dist <= query.threshold:
                        matches.append(Match(tid=entry.tid, score=-dist))
        return QueryResult(matches, stats)

    def _dsq_top_k(
        self,
        query: SimilarityTopKQuery,
        sketch_mode: str = "off",
        div_ceiling: float | None = None,
    ) -> QueryResult:
        from repro.sketch.search import emit_verify

        stats = QueryStats()
        q = query.q
        k = query.k
        lb_of, leaf_min = self._sketch_plan(query, sketch_mode)
        ceiling = math.inf if div_ceiling is None else div_ceiling
        folded = np.array([self.codec.fold_item(int(i)) for i in q.items])
        found: list[Match] = []

        def sketch_cut() -> float:
            # The distance above which a sketched lower bound certifies
            # a member (or whole leaf) cannot enter the answer, even on
            # a (distance, tid) tie — so found[:k] evolves exactly as in
            # the unfiltered traversal.  Only valid while ``found`` is
            # sorted (leaf visits sort on exit), so callers freeze it
            # before appending: a frozen cut is never below the live
            # one, which can only under-prune, never mis-prune.
            if len(found) >= k:
                return min(ceiling, -found[k - 1].score)
            return ceiling

        def visit(page_id: int) -> None:
            if leaf_min is not None:
                lower = leaf_min.get(page_id)
                if lower is not None and lower > sketch_cut():
                    return  # whole leaf page skipped unread
            page = self._pool.fetch_page(page_id)
            stats.nodes_visited += 1
            kind = node_kind(page)
            METRICS.inc("pdr.visit")
            tracer = _trace.ACTIVE
            if tracer is not None:
                tracer.event(
                    "pdr.visit",
                    page_id=page_id,
                    node="internal" if kind == PDR_INTERNAL else "leaf",
                )
            if kind == PDR_INTERNAL:
                scored = [
                    (
                        self._similarity_bound(
                            entry.boundary, q.items, q.probs, folded,
                            query.divergence,
                        ),
                        entry.child_id,
                    )
                    for entry in self._get_internal(page_id)
                ]
                scored.sort(key=lambda pair: pair[0])
                for bound, child_id in scored:
                    tau_k = -found[k - 1].score if len(found) >= k else math.inf
                    if len(found) >= k and bound > tau_k + EPSILON:
                        break
                    visit(child_id)
            else:
                direct = kernels.vectorized()
                cut = sketch_cut() if lb_of is not None else math.inf
                for entry in self._get_leaf(page_id):
                    if lb_of is not None:
                        if lb_of.get(entry.tid, -math.inf) > cut:
                            continue
                        emit_verify(entry.tid)
                    stats.candidates_examined += 1
                    if direct:
                        dist = query.distance_arrays(entry.items, entry.probs)
                    else:
                        dist = query.distance(
                            UncertainAttribute(entry.items, entry.probs)
                        )
                    found.append(Match(tid=entry.tid, score=-dist))
                found.sort()
                del found[max(k, 0) + 64 :]

        visit(self.root_page_id)
        found.sort()
        return QueryResult(found[:k], stats)

    # -- persistence ----------------------------------------------------------------

    def save(self, path) -> None:
        """Persist the tree (pages plus catalog) to ``path``.

        The tid -> leaf directory is rebuilt by a tree walk on load, so
        the catalog stays small.  The set of leaf page ids *is* saved:
        leaves are the tree's ground truth, and recovery (see
        :meth:`load`) must be able to find them without trusting the
        internal pages that may be the very thing that is damaged.
        """
        from repro.storage.persistence import save_disk_to_path

        self._pool.flush_all()
        leaf_page_ids = set(self._leaf_of_tid.values())
        if self.height == 1:
            leaf_page_ids.add(self.root_page_id)  # the (maybe empty) root leaf
        metadata = {
            "kind": "pdr-tree",
            "domain_size": self.domain_size,
            "num_tuples": self.num_tuples,
            "root_page_id": self.root_page_id,
            "height": self.height,
            "leaf_page_ids": sorted(leaf_page_ids),
            "wal_lsn": self.wal_lsn,
            "config": {
                "insert_policy": self.config.insert_policy,
                "split_strategy": self.config.split_strategy,
                "divergence": self.config.divergence,
                "fold_size": self.config.fold_size,
                "bits": self.config.bits,
            },
        }
        if self.sketch is not None:
            metadata["sketch"] = self.sketch.state()
        save_disk_to_path(path, self.disk, metadata)

    @classmethod
    def load(cls, path, *, recover: bool = True) -> "PDRTree":
        """Reopen a tree persisted with :meth:`save`.

        The image is checksum-scanned on attach.  When damage is
        confined to internal pages (and ``recover`` is true), a fresh
        tree is rebuilt by re-inserting every entry from the intact leaf
        pages.  Damage to any leaf page — or ``recover=False`` with any
        damage — raises
        :class:`~repro.core.exceptions.RecoveryError`: a wrong answer is
        never silently served.  :attr:`recovered` records which path ran.
        """
        from repro.core.exceptions import RecoveryError
        from repro.storage.persistence import scan_disk_from_path

        disk, metadata, report = scan_disk_from_path(path)
        if metadata.get("kind") != "pdr-tree":
            raise QueryError(
                f"{path} holds a {metadata.get('kind')!r} structure, "
                "not a PDR-tree"
            )
        config = PDRTreeConfig(**metadata["config"])
        if not report.clean:
            if not recover:
                raise RecoveryError(
                    f"{path} is damaged (corrupt pages "
                    f"{report.corrupt_page_ids}, "
                    f"truncated={report.truncated}) and recovery is disabled"
                )
            return cls._recover(path, disk, metadata, report, config)
        tree = cls.__new__(cls)
        tree.domain_size = int(metadata["domain_size"])
        tree.config = config
        tree.codec = BoundaryCodec(
            tree.domain_size,
            fold_size=config.fold_size,
            bits=config.bits,
        )
        tree.disk = disk
        tree._pool = BufferPool(disk, 4096)
        tree.root_page_id = int(metadata["root_page_id"])
        tree.height = int(metadata["height"])
        tree.num_tuples = int(metadata["num_tuples"])
        tree.recovered = False
        tree.mutations = 0
        tree._wal = None
        tree.wal_lsn = int(metadata.get("wal_lsn", 0))
        tree._leaf_of_tid = {}
        stack = [tree.root_page_id]
        while stack:
            page_id = stack.pop()
            page = tree._pool.fetch_page(page_id)
            if node_kind(page) == PDR_INTERNAL:
                stack.extend(
                    entry.child_id for entry in tree._get_internal(page_id)
                )
            else:
                for entry in tree._get_leaf(page_id):
                    tree._leaf_of_tid[entry.tid] = page_id
        if tree.num_tuples != len(tree._leaf_of_tid):
            raise QueryError(
                f"{path} is corrupt: catalog says {tree.num_tuples} "
                f"tuples, leaves hold {len(tree._leaf_of_tid)}"
            )
        tree.sketch = None
        sketch_state = metadata.get("sketch")
        if sketch_state is not None:
            from repro.sketch import SketchIndex

            tree.sketch = SketchIndex.attach(
                tree._pool, sketch_state, set(tree._leaf_of_tid)
            )
        return tree

    @classmethod
    def _recover(
        cls, path, disk, metadata: dict, report, config: "PDRTreeConfig"
    ) -> "PDRTree":
        """Rebuild a tree from the intact leaves of a damaged image."""
        from repro.core.exceptions import RecoveryError
        from repro.pdrtree.node import decode_leaf as _decode_leaf

        leaf_page_ids = metadata.get("leaf_page_ids")
        if leaf_page_ids is None:
            raise RecoveryError(
                f"{path}: image predates leaf tracking; cannot locate "
                "the authoritative leaf pages to rebuild from"
            )
        leaf_pages = set(int(pid) for pid in leaf_page_ids)
        damaged = leaf_pages & set(report.corrupt_page_ids)
        missing = leaf_pages - set(disk.page_ids())
        if damaged or missing:
            raise RecoveryError(
                f"{path}: leaf pages damaged beyond repair "
                f"(corrupt {sorted(damaged)}, missing {sorted(missing)})"
            )
        # Internal pages are derived data: pull every entry off the
        # intact leaves, then rebuild a fresh tree by re-insertion.
        salvage_pool = BufferPool(disk, 4096)
        entries = []
        for page_id in sorted(leaf_pages):
            page = salvage_pool.fetch_page(page_id)
            entries.extend(_decode_leaf(page))
        if int(metadata["num_tuples"]) != len(entries):
            raise RecoveryError(
                f"{path} is corrupt: catalog says {metadata['num_tuples']} "
                f"tuples, intact leaves hold {len(entries)}"
            )
        tree = cls(int(metadata["domain_size"]), config=config)
        for entry in entries:
            tree.insert(entry.tid, UncertainAttribute(entry.items, entry.probs))
        sketch_state = metadata.get("sketch")
        if sketch_state is not None:
            # Sketch pages lived on the damaged disk the rebuild left
            # behind; re-derive them on the fresh tree.
            from repro.sketch import SketchParams

            tree.build_sketch(
                SketchParams(**sketch_state["params"]), flush=False
            )
        tree._pool.flush_all()
        tree.recovered = True
        tree.wal_lsn = int(metadata.get("wal_lsn", 0))
        return tree

    def __repr__(self) -> str:
        return (
            f"PDRTree(tuples={self.num_tuples}, height={self.height}, "
            f"pages={self.disk.num_pages}, codec={self.codec.describe()!r})"
        )
