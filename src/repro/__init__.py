"""repro — a reproduction of "Indexing Uncertain Categorical Data" (ICDE 2007).

The package provides:

* a data model for **uncertain discrete attributes** (UDAs) over
  categorical domains, with probabilistic equality and distributional
  similarity semantics (:mod:`repro.core`);
* a **probabilistic inverted index** with four search strategies and a
  no-random-access rank-join variant (:mod:`repro.invindex`);
* the **Probabilistic Distribution R-tree** (PDR-tree) with pluggable
  insert policies, split strategies and MBR compression
  (:mod:`repro.pdrtree`);
* a paged storage substrate (8 KB pages, clock-replacement buffer pool)
  that counts physical I/Os the way the paper's evaluation does
  (:mod:`repro.storage`, :mod:`repro.btree`);
* dataset generators for the paper's synthetic and CRM-style workloads
  (:mod:`repro.datagen`) and the full experiment harness
  (:mod:`repro.bench`).

Quickstart::

    from repro import (
        CategoricalDomain, UncertainAttribute, UncertainRelation,
        EqualityThresholdQuery,
    )

    domain = CategoricalDomain(["Brake", "Tires", "Trans", "Exhaust"])
    cars = UncertainRelation(domain)
    cars.append(UncertainAttribute.from_labels(
        domain, {"Brake": 0.5, "Tires": 0.5}))
    cars.append(UncertainAttribute.from_labels(
        domain, {"Exhaust": 0.4, "Brake": 0.6}))

    query = EqualityThresholdQuery(
        UncertainAttribute.from_labels(domain, {"Brake": 1.0}), 0.5)
    for match in cars.execute(query):
        print(match.tid, match.score)
"""

from repro.core import (
    DIVERGENCES,
    CategoricalDomain,
    DomainError,
    EqualityQuery,
    EqualityThresholdQuery,
    EqualityTopKQuery,
    InvalidDistributionError,
    JoinPair,
    JoinResult,
    Match,
    Query,
    QueryError,
    QueryResult,
    QueryStats,
    ReproError,
    QueryVector,
    SimilarityThresholdQuery,
    SimilarityTopKQuery,
    UncertainAttribute,
    UncertainRelation,
    WindowedEqualityQuery,
    dstj,
    get_divergence,
    kl_divergence,
    l1_divergence,
    l2_divergence,
    pej_top_k,
    petj,
)
from repro.storage import BufferPool, DiskManager, IOStatistics

__version__ = "1.0.0"

__all__ = [
    "DIVERGENCES",
    "BufferPool",
    "CategoricalDomain",
    "DiskManager",
    "DomainError",
    "EqualityQuery",
    "EqualityThresholdQuery",
    "EqualityTopKQuery",
    "IOStatistics",
    "InvalidDistributionError",
    "JoinPair",
    "JoinResult",
    "Match",
    "Query",
    "QueryError",
    "QueryResult",
    "QueryStats",
    "ReproError",
    "QueryVector",
    "SimilarityThresholdQuery",
    "SimilarityTopKQuery",
    "UncertainAttribute",
    "UncertainRelation",
    "WindowedEqualityQuery",
    "__version__",
    "dstj",
    "get_divergence",
    "kl_divergence",
    "l1_divergence",
    "l2_divergence",
    "pej_top_k",
    "petj",
]
