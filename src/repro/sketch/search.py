"""Similarity execution over the inverted index's tuple list.

The inverted index's posting lists give no leverage on divergence
queries (Lemma 1 is an equality bound), so similarity execution is a
scan over the tuple list — historically refused outright.  This module
adds that scan in the three sketch modes:

``off``
    Fetch and exactly score every live tuple in ascending-tid order —
    the unfiltered baseline whose answers define correctness.
``exact``
    Read the projection-sketch pages (tag ``"sketch"``), lower-bound
    every tuple, and fetch/verify only tuples whose bound does not
    *strictly* exceed the cutoff (the DSTQ threshold, or the running
    k-th distance for top-k).  Because a pruned tuple's true divergence
    is provably above the cutoff and survivors are scored by the very
    same kernel as ``off``, answers, scores, and tie order are
    bit-identical; only the physical reads drop.
``approx``
    Verify only the MinHash/LSH band candidates.  Misses are possible
    (bounded recall, measured in ``benchmarks/bench_abl_sketch.py``);
    every *reported* match is still exactly verified.

Top-k additionally honors ``div_ceiling`` — the shard coordinator's
global k-th divergence (the dual of ``tau_floor``): any tuple whose
bound strictly exceeds the ceiling may be omitted, since the
coordinator's merge could never keep it.
"""

from __future__ import annotations

import heapq
import math

from repro.core.exceptions import QueryError
from repro.core.queries import SimilarityThresholdQuery, SimilarityTopKQuery
from repro.core.results import Match, QueryResult, QueryStats
from repro.obs import trace as _trace
from repro.obs.metrics import METRICS

#: Stop reason reported by every similarity scan, sketch-assisted or
#: not: the (possibly pre-filtered) scan ran to its sound completion.
#: Shared across modes so the exact-vs-off differential suite can
#: assert identical stop reasons.
STOP_SCAN_COMPLETE = "scan_complete"

#: Error raised when a sketch mode runs without an attached sketch.
NO_SKETCH_ERROR = (
    "sketch mode {mode!r} requires an attached sketch store; build one "
    "with build_sketch() (and persist/reload it with the index)"
)


def similarity_execute(index, query, mode: str, div_ceiling: float | None):
    """Answer a similarity descriptor against an inverted index.

    ``index`` duck-types :class:`ProbabilisticInvertedIndex`
    (``live_tids``, ``fetch_uda_arrays``, ``sketch``); ``mode`` is an
    already-resolved sketch mode.
    """
    if mode != "off" and index.sketch is None:
        raise QueryError(NO_SKETCH_ERROR.format(mode=mode))
    if isinstance(query, SimilarityThresholdQuery):
        return _threshold(index, query, mode)
    if isinstance(query, SimilarityTopKQuery):
        return _top_k(index, query, mode, div_ceiling)
    raise QueryError(
        f"similarity scan cannot answer {type(query).__name__}"
    )


def _verify(index, query, tid: int, stats: QueryStats, sketched: bool) -> float:
    """One exact verification: fetch the tuple, score it precisely."""
    stats.random_accesses += 1
    stats.candidates_examined += 1
    items, probs = index.fetch_uda_arrays(tid)
    if sketched:
        emit_verify(tid)
    return query.distance_arrays(items, probs)


def emit_probe(mode: str, divergence: str, total: int) -> None:
    """One ``sketch.probe`` record/counter per sketch-assisted query."""
    METRICS.inc("sketch.probe")
    tracer = _trace.ACTIVE
    if tracer is not None:
        tracer.event(
            "sketch.probe", mode=mode, divergence=divergence, tuples=total
        )


def emit_prune(pruned: int, candidates: int) -> None:
    """One ``sketch.prune`` record/counter per pre-filtering decision."""
    METRICS.inc("sketch.prune", pruned)
    tracer = _trace.ACTIVE
    if tracer is not None:
        tracer.event("sketch.prune", pruned=pruned, candidates=candidates)


def emit_verify(tid: int) -> None:
    """One ``sketch.verify`` record/counter per surviving candidate."""
    METRICS.inc("sketch.verify")
    tracer = _trace.ACTIVE
    if tracer is not None:
        tracer.event("sketch.verify", tid=tid)


def _candidates(index, query, mode: str, stats: QueryStats):
    """The (tid, bound) stream each mode feeds the verification loop.

    Returns ``(tids, bounds)`` where ``bounds`` is ``None`` for modes
    without usable lower bounds (``off``, ``approx``).
    """
    if mode == "off":
        return index.live_tids(), None
    total = index.sketch.num_tuples
    emit_probe(mode, query.divergence, total)
    if mode == "approx":
        tids = index.sketch.lsh_candidates(query.q.items)
        emit_prune(total - len(tids), len(tids))
        return tids, None
    tids, bounds = index.sketch.bounds(query)
    stats.entries_scanned += len(tids)
    return tids, bounds


def _threshold(index, query: SimilarityThresholdQuery, mode: str) -> QueryResult:
    stats = QueryStats()
    tids, bounds = _candidates(index, query, mode, stats)
    if bounds is not None:
        keep = bounds <= query.threshold  # prune only on a strict excess
        emit_prune(int(len(tids) - keep.sum()), int(keep.sum()))
        tids = tids[keep].tolist()
    matches = []
    sketched = mode != "off"
    for tid in tids:
        distance = _verify(index, query, int(tid), stats, sketched)
        if distance <= query.threshold:
            matches.append(Match(tid=int(tid), score=-distance))
    stats.stop_reason = STOP_SCAN_COMPLETE
    return QueryResult(matches, stats)


def _top_k(
    index,
    query: SimilarityTopKQuery,
    mode: str,
    div_ceiling: float | None,
) -> QueryResult:
    stats = QueryStats()
    tids, bounds = _candidates(index, query, mode, stats)
    k = query.k
    ceiling = math.inf if div_ceiling is None else div_ceiling
    #: Max-heap (by (distance, tid)) of the k best candidates so far;
    #: the root is the current k-th answer, i.e. the pruning cutoff.
    worst_first: list[tuple[float, int]] = []
    sketched = mode != "off"
    if bounds is None:
        for tid in tids:
            distance = _verify(index, query, int(tid), stats, sketched)
            _push(worst_first, k, distance, int(tid))
    else:
        # Ascending-bound order lets the loop stop as soon as a bound
        # strictly exceeds the running k-th distance: every later tuple
        # has distance >= bound > tau_k and cannot displace even a tied
        # answer (ties break strictly on (distance, tid)).
        order = bounds.argsort(kind="stable")
        verified = 0
        for position in order.tolist():
            bound = float(bounds[position])
            if bound > ceiling:
                break
            if len(worst_first) >= k and bound > -worst_first[0][0]:
                break
            distance = _verify(
                index, query, int(tids[position]), stats, sketched
            )
            _push(worst_first, k, distance, int(tids[position]))
            verified += 1
        emit_prune(len(tids) - verified, verified)
    # Heap entries are (-distance, -tid): the first element already *is*
    # the Match score, the second only needs its sign restored.
    matches = [Match(tid=-neg_tid, score=neg_dist)
               for neg_dist, neg_tid in worst_first]
    stats.stop_reason = STOP_SCAN_COMPLETE
    return QueryResult(sorted(matches)[:k], stats)


def _push(worst_first: list, k: int, distance: float, tid: int) -> None:
    """Keep the k smallest (distance, tid) pairs in a negated min-heap."""
    entry = (-distance, -tid)
    if len(worst_first) < k:
        heapq.heappush(worst_first, entry)
    elif entry > worst_first[0]:
        heapq.heapreplace(worst_first, entry)
