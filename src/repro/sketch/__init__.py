"""Sketch pre-filtering for similarity queries (ROADMAP item 5).

Every similarity path — DSTQ point queries, DSQ-top-k, and DSTJ joins —
ultimately scores candidates with an exact divergence over the full
probability vectors, the one query family where posting-list pruning
(Lemma 1) gives no leverage.  This package adds a cheap pre-filter in
front of that exact verification:

* :mod:`repro.sketch.bounds` — per-tuple *projection sketches* (a hashed
  support fingerprint, signed random projections, the total mass) with
  provable **lower bounds** on l1/l2/KL divergence, the soundness
  contract exact mode rests on;
* :mod:`repro.sketch.minhash` — MinHash signatures over UDA support
  sets with LSH banding, the candidate generator for approximate mode;
* :mod:`repro.sketch.index` — :class:`SketchIndex`, the paged store
  (tag ``"sketch"``) both live in: counted, CRC'd, fault-injectable,
  persisted, WAL-replay- and compaction-aware like every other page;
* :mod:`repro.sketch.search` — the similarity scan engine the inverted
  index dispatches to;
* :mod:`repro.sketch.config` — the ``REPRO_SKETCH`` knob
  (``off`` / ``exact`` / ``approx``), mirroring the kernel/batch knobs.

**Exact mode** prunes only candidates whose lower bound exceeds the
current threshold/τ and fully verifies the rest — answers, scores and
tie order are bit-identical to the unfiltered path, the win is pure
I/O.  **Approximate mode** takes LSH candidates only and reports
measured recall (see ``benchmarks/bench_abl_sketch.py``).
"""

from repro.sketch.config import (
    MODES,
    SKETCH_ENV,
    resolve_sketch,
    sketch_override,
)
from repro.sketch.index import SKETCH_TAG, SketchIndex, SketchParams

__all__ = [
    "MODES",
    "SKETCH_ENV",
    "SKETCH_TAG",
    "SketchIndex",
    "SketchParams",
    "resolve_sketch",
    "sketch_override",
]
