"""The paged sketch store both index families attach.

A :class:`SketchIndex` owns two append-only heap files on the host
index's disk, both under the page tag :data:`SKETCH_TAG` so sketch
reads show up under their own key in
:meth:`~repro.storage.disk.DiskManager.snapshot_tags` — counted,
CRC-verified, and fault-injectable like every other page:

* the **projection heap** — one fixed-width record per tuple
  (:func:`repro.sketch.bounds.record_dtype`), scanned per query by
  exact mode to compute divergence lower bounds;
* the **signature heap** — one MinHash signature per tuple, read once
  at attach time to rebuild the in-memory LSH band tables (a catalog,
  like the tid -> rid directory: query-time lookups are free, the
  persisted truth still lives in counted pages).

Mutability mirrors the host index: inserts append (the write path the
WAL replays through), deletes drop the tid from the live set while the
stale record lingers until the host's ``compact()`` rebuilds the store
deterministically, and a scan resolves duplicate tids by letting the
later record win — exactly the heap-scan convention of
:meth:`ProbabilisticInvertedIndex.load`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from repro.core.exceptions import QueryError
from repro.sketch.bounds import QuerySketch, encode_record, record_dtype
from repro.sketch.minhash import band_keys, minhash_signature
from repro.storage.buffer import BufferPool
from repro.storage.heapfile import HeapFile

#: Page tag under which every sketch page is allocated and read.
SKETCH_TAG = "sketch"


@dataclass(frozen=True)
class SketchParams:
    """Build-time knobs of a sketch store.

    ``bands`` must divide ``num_perm``; with ``rows = num_perm / bands``
    per band, a candidate is surfaced when any band's rows all collide,
    so raising ``bands`` (fewer rows each) raises recall and candidate
    count together — the axis ``benchmarks/bench_abl_sketch.py`` sweeps.
    """

    num_perm: int = 32
    bands: int = 32
    num_projections: int = 2
    seed: int = 0x5EED

    def __post_init__(self) -> None:
        if self.num_perm < 1:
            raise QueryError(f"num_perm must be >= 1, got {self.num_perm}")
        if not 1 <= self.bands <= min(self.num_perm, 255):
            raise QueryError(
                f"bands must lie in [1, min(num_perm, 255)], got {self.bands}"
            )
        if self.num_perm % self.bands:
            raise QueryError(
                f"bands ({self.bands}) must divide num_perm ({self.num_perm})"
            )
        if not 1 <= self.num_projections <= 32:
            raise QueryError(
                f"num_projections must lie in [1, 32], "
                f"got {self.num_projections}"
            )


class SketchIndex:
    """Per-tuple sketches over one uncertain attribute."""

    def __init__(self, pool: BufferPool, params: SketchParams | None = None) -> None:
        self.params = params if params is not None else SketchParams()
        self._proj_heap = HeapFile(pool, tag=SKETCH_TAG)
        self._sig_heap = HeapFile(pool, tag=SKETCH_TAG)
        self._record_dtype = record_dtype(self.params.num_projections)
        self._sig_dtype = np.dtype(
            [("tid", "<u4"), ("sig", "<u4", (self.params.num_perm,))]
        )
        self._tids: set[int] = set()
        self._bands: dict[bytes, set[int]] = {}

    # -- buffering ----------------------------------------------------------

    @property
    def pool(self) -> BufferPool:
        return self._proj_heap.pool

    @pool.setter
    def pool(self, pool: BufferPool) -> None:
        self._proj_heap.pool = pool
        self._sig_heap.pool = pool

    # -- maintenance --------------------------------------------------------

    def insert(self, tid: int, items: np.ndarray, probs: np.ndarray) -> None:
        """Sketch one tuple: append both records, index its bands.

        ``probs`` must be the f32-exact values the host index stores
        (what verification will score against), so the projection/mass
        slack of :mod:`repro.sketch.bounds` stays sufficient.
        """
        params = self.params
        self._proj_heap.append(
            encode_record(tid, items, probs, params.num_projections, params.seed)
        )
        signature = minhash_signature(
            np.asarray(items, dtype=np.int64), params.num_perm, params.seed
        )
        record = np.zeros(1, dtype=self._sig_dtype)
        record["tid"] = tid
        record["sig"] = signature
        self._sig_heap.append(record.tobytes())
        self._index_signature(tid, signature)
        self._tids.add(tid)

    def delete(self, tid: int) -> None:
        """Drop a tuple from the live set; its records linger until the
        host index's next compaction rebuilds the store."""
        self._tids.discard(tid)

    def _index_signature(self, tid: int, signature: np.ndarray) -> None:
        for key in band_keys(signature, self.params.bands):
            self._bands.setdefault(key, set()).add(tid)

    # -- query-time access --------------------------------------------------

    def bounds(self, query) -> tuple[np.ndarray, np.ndarray]:
        """Scan the projection heap; lower-bound every live tuple.

        ``query`` is a similarity descriptor
        (:class:`~repro.core.queries.SimilarityThresholdQuery` or
        :class:`~repro.core.queries.SimilarityTopKQuery`).  Returns
        ``(tids, lower_bounds)`` in ascending-tid order, deduplicated
        (last record wins) and restricted to live tuples.  Every page
        read flows through the pool under :data:`SKETCH_TAG`.
        """
        params = self.params
        sketch = QuerySketch(
            query.q.items,
            query.q.probs,
            query.divergence,
            params.num_projections,
            params.seed,
        )
        chunks = [record for _, record in self._proj_heap.scan()]
        if not chunks:
            return np.zeros(0, dtype=np.int64), np.zeros(0)
        records = np.frombuffer(b"".join(chunks), dtype=self._record_dtype)
        lbs = sketch.lower_bounds(records)
        tids = records["tid"].astype(np.int64)
        latest: dict[int, int] = {}
        for row, tid in enumerate(tids.tolist()):
            if tid in self._tids:
                latest[tid] = row
        ordered = sorted(latest)
        rows = np.fromiter(
            (latest[tid] for tid in ordered), dtype=np.int64, count=len(ordered)
        )
        return np.asarray(ordered, dtype=np.int64), lbs[rows]

    def lsh_candidates(self, items: np.ndarray) -> list[int]:
        """Live tuple ids sharing at least one LSH band with ``items``."""
        params = self.params
        signature = minhash_signature(
            np.asarray(items, dtype=np.int64), params.num_perm, params.seed
        )
        found: set[int] = set()
        for key in band_keys(signature, params.bands):
            found.update(self._bands.get(key, ()))
        return sorted(found & self._tids)

    # -- introspection ------------------------------------------------------

    @property
    def num_tuples(self) -> int:
        return len(self._tids)

    def page_ids(self) -> list[int]:
        """Projection-heap page ids (the pages exact mode scans)."""
        return list(self._proj_heap.state()["page_ids"])

    # -- persistence --------------------------------------------------------

    def state(self) -> dict:
        """JSON-serializable attachment state (catalog only; the records
        themselves live in the disk image)."""
        return {
            "params": asdict(self.params),
            "proj_heap": self._proj_heap.state(),
            "sig_heap": self._sig_heap.state(),
        }

    @classmethod
    def attach(
        cls, pool: BufferPool, state: dict, live_tids: set[int]
    ) -> "SketchIndex":
        """Re-attach a persisted sketch store.

        The band tables are rebuilt by scanning the signature heap
        through ``pool`` (counted attach-time reads, so a damaged
        signature page fails the CRC here rather than serving wrong
        candidates later).  ``live_tids`` comes from the host index's
        directory; lingering records of deleted tuples are skipped.
        """
        sketch = cls(pool, SketchParams(**state["params"]))
        sketch._proj_heap = HeapFile.attach(
            pool, state["proj_heap"], tag=SKETCH_TAG
        )
        sketch._sig_heap = HeapFile.attach(
            pool, state["sig_heap"], tag=SKETCH_TAG
        )
        sketch._tids = set(live_tids)
        for _, record in sketch._sig_heap.scan():
            decoded = np.frombuffer(record, dtype=sketch._sig_dtype)[0]
            tid = int(decoded["tid"])
            if tid in sketch._tids:
                sketch._index_signature(tid, decoded["sig"])
        return sketch

    def __repr__(self) -> str:
        return (
            f"SketchIndex(tuples={self.num_tuples}, "
            f"pages={self._proj_heap.num_pages + self._sig_heap.num_pages}, "
            f"bands={self.params.bands}/{self.params.num_perm})"
        )
