"""The ``REPRO_SKETCH`` knob: sketch pre-filtering mode resolution.

Mirrors the kernel/batch knobs (:func:`repro.exec.batch.resolve_batch`):
an explicit argument wins over a process-local override
(:func:`sketch_override`) wins over the environment, and a malformed
value raises a :class:`~repro.core.exceptions.ConfigError` naming the
variable.  The default is ``off`` — the unfiltered scan, which is
always the I/O baseline.

Modes
-----
``off``
    No pre-filtering; similarity queries scan and verify every tuple.
``exact``
    Sketch lower bounds prune candidates that provably cannot qualify;
    the survivors are fully verified.  Answers, scores and tie order
    are bit-identical to ``off`` (differential-tested); the win is
    pure I/O.  Requires an attached :class:`~repro.sketch.SketchIndex`.
``approx``
    MinHash/LSH banding generates the candidate set; only candidates
    are verified.  Recall is bounded below 1 and measured by
    ``benchmarks/bench_abl_sketch.py``.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.core.config import parse_choice_knob, read_env_choice

#: Environment variable selecting the default sketch mode.
SKETCH_ENV = "REPRO_SKETCH"

#: Valid sketch pre-filtering modes.
MODES = ("off", "exact", "approx")

#: Process-local override installed by :func:`sketch_override`.
_OVERRIDE: str | None = None


def resolve_sketch(mode: str | None = None) -> str:
    """The effective sketch mode: explicit arg > override > env > off.

    An unset / empty / ``default`` environment value means ``off`` —
    the unfiltered scan.  A malformed ``REPRO_SKETCH`` raises a
    :class:`~repro.core.exceptions.ConfigError` naming the variable.
    """
    if mode is not None:
        return parse_choice_knob(mode, "sketch mode", choices=MODES)
    if _OVERRIDE is not None:
        return _OVERRIDE
    value = read_env_choice(
        SKETCH_ENV, choices=MODES, special={"default": "off"}
    )
    return "off" if value is None else value


@contextmanager
def sketch_override(mode: str):
    """Scope a sketch mode to a block (tests, benches, workers)."""
    global _OVERRIDE
    mode = parse_choice_knob(mode, "sketch mode", choices=MODES)
    previous = _OVERRIDE
    _OVERRIDE = mode
    try:
        yield
    finally:
        _OVERRIDE = previous
