"""Deterministic hashing primitives for the sketch subsystem.

Everything here is a pure function of ``(seed, input)`` built on a
vectorized splitmix64 finalizer — **never** Python's salted ``hash``
— because sharded deployments rebuild sketches independently in worker
processes (:func:`repro.shard.index.build_shard_index`) and the band
tables must agree across processes and runs.

Three derived families share the one mixer, each under its own seed
stream:

* **support fingerprint** — a 64-bit Bloom filter (one hash) of the
  UDA's support set.  A *clear* bit is a certificate that the tuple
  stores probability exactly 0 for every query item hashing to it;
  that certificate is what makes the divergence lower bounds of
  :mod:`repro.sketch.bounds` sound.
* **signed projections** — Rademacher ±1 signs per (projection, item),
  giving the Hölder bound ``|<r, q - v>| <= ||q - v||_1``.
* **MinHash** — ``num_perm`` independent 32-bit min-hashes over the
  support set, banded for LSH candidate generation (the
  datasketch-style production framing; see SNIPPETS.md §1).
"""

from __future__ import annotations

import numpy as np

_SPLITMIX_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_MIX_1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_2 = np.uint64(0x94D049BB133111EB)

#: Seed-stream offsets so the fingerprint, projection, and MinHash
#: families draw from disjoint hash streams under one user seed.
_STREAM_FINGERPRINT = np.uint64(0x0F1A9E5D)
_STREAM_PROJECTION = np.uint64(0x51A7C0DE)
_STREAM_MINHASH = np.uint64(0xB10C8A5E)


def mix64(values: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer over a uint64 array."""
    with np.errstate(over="ignore"):
        z = values.astype(np.uint64, copy=True) + _SPLITMIX_GAMMA
        z = (z ^ (z >> np.uint64(30))) * _MIX_1
        z = (z ^ (z >> np.uint64(27))) * _MIX_2
        return z ^ (z >> np.uint64(31))


def _keyed(items: np.ndarray, stream: np.uint64, seed: int) -> np.ndarray:
    with np.errstate(over="ignore"):
        key = np.uint64(seed) * _SPLITMIX_GAMMA + stream
        return mix64(items.astype(np.uint64) ^ key)


def fingerprint_bits(items: np.ndarray, seed: int) -> np.ndarray:
    """Per-item 64-bit one-hot masks (uint64), one bit per item hash."""
    bits = _keyed(items, _STREAM_FINGERPRINT, seed) & np.uint64(63)
    return np.left_shift(np.uint64(1), bits)


def fingerprint(items: np.ndarray, seed: int) -> int:
    """The support fingerprint: OR of every item's one-hot mask."""
    if len(items) == 0:
        return 0
    return int(np.bitwise_or.reduce(fingerprint_bits(items, seed)))


def projection_signs(
    items: np.ndarray, num_projections: int, seed: int
) -> np.ndarray:
    """Rademacher ±1 signs, shape ``(num_projections, len(items))``.

    Sign ``j`` of item ``i`` is bit ``j`` of the item's keyed hash, so
    up to 64 projections share one mix per item.
    """
    hashed = _keyed(items, _STREAM_PROJECTION, seed)
    shifts = np.arange(num_projections, dtype=np.uint64)[:, None]
    bits = (hashed[None, :] >> shifts) & np.uint64(1)
    return bits.astype(np.float64) * 2.0 - 1.0


def project(
    items: np.ndarray,
    probs: np.ndarray,
    num_projections: int,
    seed: int,
) -> np.ndarray:
    """Signed-projection coordinates ``s_j = sum_i sign_j(i) * p_i``."""
    if len(items) == 0:
        return np.zeros(num_projections)
    signs = projection_signs(items, num_projections, seed)
    return signs @ np.asarray(probs, dtype=np.float64)


def minhash_signature(
    items: np.ndarray, num_perm: int, seed: int
) -> np.ndarray:
    """MinHash signature (uint32, length ``num_perm``) of a support set.

    Permutation ``j`` hashes every item under its own derived key and
    keeps the minimum; an empty support yields the all-ones signature
    (which collides only with other empty supports).
    """
    if len(items) == 0:
        return np.full(num_perm, 0xFFFFFFFF, dtype=np.uint32)
    with np.errstate(over="ignore"):
        perm_keys = mix64(
            np.arange(num_perm, dtype=np.uint64)
            + np.uint64(seed) * _SPLITMIX_GAMMA
            + _STREAM_MINHASH
        )
        hashed = mix64(
            items.astype(np.uint64)[None, :] ^ perm_keys[:, None]
        )
    return (hashed >> np.uint64(32)).min(axis=1).astype(np.uint32)


def band_keys(signature: np.ndarray, bands: int) -> list[bytes]:
    """Split a signature into ``bands`` row-groups, one hashable key each."""
    rows = len(signature) // bands
    return [
        bytes([band]) + signature[band * rows : (band + 1) * rows].tobytes()
        for band in range(bands)
    ]
