"""Provable divergence lower bounds from per-tuple projection sketches.

A tuple's sketch record stores four things about its (f32-exact) sparse
probability vector ``v``:

* ``fp`` — the 64-bit hashed-support fingerprint.  A query item whose
  fingerprint bit is *clear* in ``fp`` is certified absent from ``v``'s
  support (``v_i = 0``); a set bit says nothing (hash collisions).
* ``mass`` — ``sum_i v_i`` (an all-ones projection).
* ``proj`` — signed Rademacher projections ``s_j(v) = <r_j, v>`` with
  ``r_j in {-1, +1}^d``.
* ``nnz`` — the support size.

From these we derive, per divergence, a **lower bound** on the true
divergence from any query vector ``q``:

l1 (three bounds, take the max)
    * *deficit*: ``sum_{i clear} q_i <= sum_i |q_i - v_i|`` — every
      certified-absent item contributes its full ``q_i``;
    * *Hölder / projection*: ``|s_j(q) - s_j(v)| = |<r_j, q - v>|
      <= ||r_j||_inf * ||q - v||_1 = l1``;
    * *mass*: ``|mass(q) - mass(v)| = |<1, q - v>| <= l1``.

l2 (two bounds, take the max)
    * *deficit*: ``sqrt(sum_{i clear} q_i^2) <= l2``;
    * *Cauchy–Schwarz*: ``l1 <= sqrt(|supp(q) ∪ supp(v)|) * l2``, so
      ``l2 >= l1_lb / sqrt(nnz_q + nnz_v)``.

KL (termwise, against the epsilon-floored :func:`~repro.core.divergence.sparse_kl`)
    ``kl_hat(q, v) = sum_{i in supp(q)} q_i log(q_i / max(v_i, eps))``.
    For a *clear* item ``v_i = 0`` exactly, so its term is exactly
    ``q_i log(q_i / eps)``; for a *set* item ``max(v_i, eps) <= 1``
    bounds the term below by ``q_i log(q_i)``.  Summing gives a sound
    (possibly negative) lower bound.

    The Pinsker route the literature suggests — ``KL >= l1^2 / 2`` — is
    **unsound** here: ``kl_hat`` is the paper's epsilon-floored sum over
    ``q``'s support only, and for mass-deficient UDAs it can be far
    below the true KL (even negative: ``q = {a: 0.5}``,
    ``v = {a: 1.0}`` gives ``kl_hat = -0.35`` while ``l1 = 0.5``).  The
    property suite (``tests/sketch/test_bounds_property.py``) rejects
    any bound that can exceed the verified divergence, which is exactly
    why exact mode uses the termwise bound above instead.  See
    ``docs/sketch-prefilter.md`` for the full derivations.

symmetric KL
    ``0.5 * (kl_hat(q,v) + kl_hat(v,q))``.  The reverse term is bounded
    below by ``-(mass_q + nnz_v * eps) / e`` (each summand
    ``x log(x/c)`` is minimized at ``x = c/e`` with value ``-c/e``),
    giving a weak but sound combined bound.

Floating-point safety: every stored f32 quantity carries an absolute
slack (:data:`PROJECTION_SLACK`), and the final bound is shaved by a
relative + absolute margin (:func:`shave`) larger than any admissible
difference in summation order between the bound computation and the
exact divergence kernels.  Exact mode then prunes with a *strict*
comparison, so a pruned tuple provably cannot qualify.
"""

from __future__ import annotations

import numpy as np

from repro.core.divergence import KL_EPSILON
from repro.core.exceptions import QueryError

from repro.sketch.minhash import fingerprint_bits, project

#: Absolute slack absorbing f32 storage rounding of mass/projection
#: coordinates (|s| <= 1, so the cast error is < 2^-24 ~ 6e-8).
PROJECTION_SLACK = 1e-6

#: Relative / absolute shave applied to every final bound, absorbing
#: summation-order differences against the exact divergence kernels.
_REL_SHAVE = 1e-9
_ABS_SHAVE = 1e-12

#: Divergences the sketch can lower-bound (the sparse registry's keys).
BOUNDED_DIVERGENCES = ("l1", "l2", "kl", "symmetric_kl")


def record_dtype(num_projections: int) -> np.dtype:
    """The fixed-width on-page layout of one projection-sketch record."""
    return np.dtype(
        [
            ("tid", "<u4"),
            ("nnz", "<u2"),
            ("pad", "<u2"),
            ("mass", "<f4"),
            ("fp", "<u8"),
            ("proj", "<f4", (num_projections,)),
        ]
    )


def encode_record(
    tid: int,
    items: np.ndarray,
    probs: np.ndarray,
    num_projections: int,
    seed: int,
) -> bytes:
    """Serialize one tuple's projection sketch."""
    from repro.sketch.minhash import fingerprint

    record = np.zeros(1, dtype=record_dtype(num_projections))
    record["tid"] = tid
    record["nnz"] = len(items)
    record["mass"] = float(np.asarray(probs, dtype=np.float64).sum())
    record["fp"] = fingerprint(np.asarray(items, dtype=np.int64), seed)
    record["proj"] = project(
        np.asarray(items, dtype=np.int64), probs, num_projections, seed
    ).astype(np.float32)
    return record.tobytes()


def shave(bounds: np.ndarray) -> np.ndarray:
    """Conservatively shrink bounds below any float-roundoff ambiguity."""
    return bounds - (_REL_SHAVE * np.abs(bounds) + _ABS_SHAVE)


class QuerySketch:
    """Per-query precomputation shared across every record comparison."""

    def __init__(
        self,
        items: np.ndarray,
        probs: np.ndarray,
        divergence: str,
        num_projections: int,
        seed: int,
    ) -> None:
        if divergence not in BOUNDED_DIVERGENCES:
            raise QueryError(
                f"sketch bounds support {BOUNDED_DIVERGENCES}; "
                f"got {divergence!r}"
            )
        self.divergence = divergence
        items = np.asarray(items, dtype=np.int64)
        self.probs = np.asarray(probs, dtype=np.float64)
        self.bits = fingerprint_bits(items, seed)
        self.mass = float(self.probs.sum())
        self.nnz = len(items)
        self.proj = project(items, self.probs, num_projections, seed)
        if divergence in ("kl", "symmetric_kl"):
            log_q = np.log(self.probs)
            #: Term of a certified-absent item: q log(q / eps), exact.
            self.term_absent = self.probs * (log_q - np.log(KL_EPSILON))
            #: Floor for a possibly-present item: q log(q / 1) = q log q.
            self.term_present = self.probs * log_q

    def lower_bounds(self, records: np.ndarray) -> np.ndarray:
        """Sound lower bounds on divergence(q, v) for each record.

        ``records`` is a structured array with :func:`record_dtype`
        fields.  The returned array is safe to compare *strictly*
        against the exact divergence the verification step computes:
        ``lb > x`` implies ``divergence > x``.
        """
        if len(records) == 0:
            return np.zeros(0)
        clear = (records["fp"][:, None] & self.bits[None, :]) == 0
        divergence = self.divergence
        if divergence in ("kl", "symmetric_kl"):
            forward = clear @ self.term_absent + (~clear) @ self.term_present
            if divergence == "kl":
                return shave(forward)
            reverse_floor = -(
                self.mass + records["nnz"].astype(np.float64) * KL_EPSILON
            ) / np.e
            return shave(0.5 * (forward + reverse_floor))
        deficit = clear @ self.probs
        projections = np.abs(
            self.proj[None, :] - records["proj"].astype(np.float64)
        ).max(axis=1)
        mass_gap = np.abs(self.mass - records["mass"].astype(np.float64))
        l1 = np.maximum(
            deficit,
            np.maximum(projections, mass_gap) - PROJECTION_SLACK,
        )
        l1 = np.maximum(l1, 0.0)
        if divergence == "l1":
            return shave(l1)
        deficit_l2 = np.sqrt(clear @ np.square(self.probs))
        union = self.nnz + records["nnz"].astype(np.float64)
        cauchy_schwarz = np.where(union > 0.0, l1 / np.sqrt(union), 0.0)
        return shave(np.maximum(deficit_l2, cauchy_schwarz))


def lower_bound(
    q_items: np.ndarray,
    q_probs: np.ndarray,
    v_items: np.ndarray,
    v_probs: np.ndarray,
    divergence: str,
    num_projections: int = 2,
    seed: int = 0,
) -> float:
    """One-shot bound for a pair of sparse vectors (tests and docs).

    Builds ``v``'s sketch record and ``q``'s query sketch, then returns
    the same bound the paged scan would produce — the soundness
    contract ``lower_bound(q, v) <= divergence(q, v)`` is property
    tested against every registered divergence.
    """
    record = np.frombuffer(
        encode_record(0, v_items, v_probs, num_projections, seed),
        dtype=record_dtype(num_projections),
    )
    sketch = QuerySketch(q_items, q_probs, divergence, num_projections, seed)
    return float(sketch.lower_bounds(record)[0])
