#!/usr/bin/env python
"""Run every experiment at a chosen scale and save the series tables.

Usage::

    REPRO_SCALE=default python benchmarks/run_all.py [results_dir]

This is the driver used to produce the numbers recorded in
EXPERIMENTS.md; ``pytest benchmarks/ --benchmark-only`` runs the same
experiments through pytest-benchmark instead.
"""

import sys
import time
from pathlib import Path

from repro.bench import ALL_EXPERIMENTS, ExperimentScale, format_result


def main() -> None:
    scale = ExperimentScale.from_env()
    results_dir = Path(
        sys.argv[1] if len(sys.argv) > 1 else "benchmarks/results"
    )
    results_dir.mkdir(parents=True, exist_ok=True)
    print(f"scale: crm={scale.crm_tuples} synth={scale.synth_tuples} "
          f"qpp={scale.queries_per_point}")
    for name, experiment in ALL_EXPERIMENTS.items():
        started = time.time()
        result = experiment(scale)
        elapsed = time.time() - started
        table = format_result(result)
        print(table)
        print(f"[{name}: {elapsed:.1f}s]\n", flush=True)
        (results_dir / f"{name}.txt").write_text(table + "\n")


if __name__ == "__main__":
    main()
