#!/usr/bin/env python
"""Run every experiment at a chosen scale and save tables + JSON.

Usage::

    python benchmarks/run_all.py [results_dir] [--scale quick|default|paper]
                                 [--jobs N] [--experiments fig4 fig10 ...]

Experiments fan out across ``--jobs`` worker processes (default: the
``REPRO_JOBS`` environment variable, else one per CPU); measured I/O is
bit-identical for every jobs count, so parallelism is purely a wall-clock
lever.  For each experiment the driver writes:

* ``<name>.txt`` — the aligned series table (the paper figure as rows);
* ``BENCH_<name>.json`` — machine-readable series (per-point mean I/O,
  per-tag breakdown, cache hit rates) plus the experiment's wall-clock;

and a run-level ``BENCH_summary.json`` with the total wall-clock and
configuration, so the perf trajectory is tracked across PRs.

``REPRO_SCALE`` is honoured when ``--scale`` is omitted;
``pytest benchmarks/ --benchmark-only`` runs the same experiments through
pytest-benchmark instead.
"""

import argparse
import json
import os
import time
from pathlib import Path

from repro.bench import (
    ALL_EXPERIMENTS,
    ExperimentScale,
    format_result,
    resolve_jobs,
    result_to_dict,
    run_experiments,
)
from repro.core.kernels import kernel_mode
from repro.exec import resolve_batch, resolve_join_block
from repro.obs.metrics import MetricsRegistry
from repro.sketch import resolve_sketch
from repro.obs.trace import TRACE_ENV, resolve_trace_path
from repro.storage.backends import (
    BACKEND_ENV,
    BACKEND_NAMES,
    active_backend_spec,
    set_active_backend,
)
from repro.storage.buffer import DECODED_CACHE_ENV

_SCALES = {
    "quick": ExperimentScale.quick,
    "default": ExperimentScale.default,
    "paper": ExperimentScale.paper,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the full experiment suite and save tables + JSON."
    )
    parser.add_argument(
        "results_dir",
        nargs="?",
        type=Path,
        default=Path("benchmarks/results"),
        help="output directory (default: benchmarks/results)",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(_SCALES),
        default=None,
        help="dataset/workload scale (default: REPRO_SCALE or quick)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (default: REPRO_JOBS or the CPU count; "
        "1 runs inline)",
    )
    parser.add_argument(
        "--experiments",
        nargs="+",
        default=None,
        metavar="NAME",
        help="subset of experiments to run (default: all)",
    )
    parser.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="PATH",
        help="write a measurement-scoped JSONL query trace to PATH "
        f"(default: the {TRACE_ENV} environment variable, else off)",
    )
    parser.add_argument(
        "--batch",
        type=int,
        default=None,
        metavar="N",
        help="queries per buffer pool (default: REPRO_BATCH or 1)",
    )
    parser.add_argument(
        "--backend",
        choices=list(BACKEND_NAMES),
        default=None,
        help=f"storage backend under the disk (default: {BACKEND_ENV} or "
        "simulated; I/O counts are backend-independent, but goldens bind "
        "to simulated — see docs/storage-backends.md)",
    )
    parser.add_argument(
        "--join-block",
        type=int,
        default=None,
        metavar="N",
        help="outer tuples per join block (default: REPRO_JOIN_BLOCK or 1; "
        "1 is the per-probe protocol, >1 enables the block rank-join "
        "engine's shared scans and adaptive thresholds)",
    )
    args = parser.parse_args(argv)

    scale = (
        _SCALES[args.scale]() if args.scale else ExperimentScale.from_env()
    )
    jobs = resolve_jobs(args.jobs)
    batch = resolve_batch(args.batch)
    join_block = resolve_join_block(args.join_block)
    if args.backend is not None:
        set_active_backend(args.backend)
    backend = active_backend_spec()  # resolved once; shipped to workers
    names = args.experiments or list(ALL_EXPERIMENTS)
    results_dir = args.results_dir
    results_dir.mkdir(parents=True, exist_ok=True)
    print(
        f"scale: crm={scale.crm_tuples} synth={scale.synth_tuples} "
        f"qpp={scale.queries_per_point}  jobs={jobs}  "
        f"kernel={kernel_mode()}  batch={batch}  join_block={join_block}  "
        f"backend={backend.name}"
    )

    trace_path = resolve_trace_path(
        str(args.trace) if args.trace is not None else None
    )
    metrics = MetricsRegistry()
    started = time.perf_counter()
    # kernel + batch + join_block + mode + backend identify the
    # execution protocol; compare_io refuses to diff result dirs whose
    # protocols conflict (batch or join_block > 1 legally lowers reads,
    # so cross-protocol diffs are apples to oranges; a non-simulated
    # backend keeps I/O identical but invalidates every wall-clock
    # field, and goldens bind to simulated only).  run_all always
    # measures: serving-mode results are never golden-comparable
    # (docs/serving.md).  run_all is a single-node run, declared as
    # shards=1 over the in-process transport so scatter-gather result
    # dirs (docs/sharding.md) are only diffed against it when their
    # shard protocol matches.
    summary = {
        "jobs": jobs,
        "kernel": kernel_mode(),
        "batch": batch,
        "join_block": join_block,
        "mode": "measure",
        "backend": backend.name,
        "shards": 1,
        "transport": "local",
        "sketch": resolve_sketch(),
        "decoded_cache": os.environ.get(DECODED_CACHE_ENV, "default"),
        "scale": {
            "crm_tuples": scale.crm_tuples,
            "synth_tuples": scale.synth_tuples,
            "queries_per_point": scale.queries_per_point,
        },
        "experiments": {},
    }
    for name, result, elapsed in run_experiments(
        names,
        scale,
        jobs,
        trace_path=trace_path,
        metrics=metrics,
        batch=batch,
        join_block=join_block,
    ):
        table = format_result(result)
        print(table)
        print(f"[{name}: {elapsed:.1f}s]\n", flush=True)
        (results_dir / f"{name}.txt").write_text(table + "\n")
        payload = result_to_dict(result)
        payload["elapsed_seconds"] = round(elapsed, 3)
        (results_dir / f"BENCH_{name}.json").write_text(
            json.dumps(payload, indent=2) + "\n"
        )
        summary["experiments"][name] = round(elapsed, 3)
    summary["total_wall_clock_seconds"] = round(
        time.perf_counter() - started, 3
    )
    # Measurement-scoped event counters for the whole run (identical for
    # any --jobs value).  compare_io only reads BENCH_<name>.json point
    # fields, so adding this to the summary cannot perturb I/O diffs.
    summary["metrics"] = metrics.snapshot()
    if trace_path is not None:
        summary["trace"] = str(trace_path)
    (results_dir / "BENCH_summary.json").write_text(
        json.dumps(summary, indent=2) + "\n"
    )
    if trace_path is not None:
        print(f"trace written to {trace_path}")
    print(
        f"total: {summary['total_wall_clock_seconds']:.1f}s "
        f"({jobs} job{'s' if jobs != 1 else ''})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
