"""Figure 5 — inverted index vs PDR-tree on the synthetic extremes.

Paper shape: the PDR-tree wins on Uniform (dense tuples force the
inverted index through many long lists); the inverted index is far
better on Pairwise than on Uniform, but the PDR-tree still wins.
"""

from repro.bench import figure5


def test_fig05_synthetic(benchmark, scale, report):
    result = benchmark.pedantic(figure5, args=(scale,), iterations=1, rounds=1)
    report(result, benchmark)
    # PDR-tree beats the inverted index on Uniform at every selectivity.
    inv = result.series_values("Uniform-Inv-Thres")
    pdr = result.series_values("Uniform-PDR-Thres")
    assert sum(pdr) < sum(inv)
    # The inverted index does much better on Pairwise than on Uniform.
    pairwise_inv = result.series_values("Pairwise-Inv-Thres")
    assert sum(pairwise_inv) < sum(inv)
