#!/usr/bin/env python
"""Ablation: batched execution vs the per-query protocol.

Usage::

    python benchmarks/bench_abl_batch.py [results_dir]
        [--scale quick|default|paper] [--queries N]
        [--batch-sizes 1,8,32] [--assert-speedup S] [--assert-io-savings F]

Runs a Figure 5-style synthetic workload (uniform + pairwise datasets,
PETQ and top-k kinds over the scale's selectivities, >= ``--queries``
queries total) through the inverted index twice per point:

* **per-query** — the paper's protocol: a fresh 100-frame buffer pool
  per query (the baseline both for wall-clock and counted reads);
* **batched** — :class:`repro.exec.BatchExecutor` at each ``--batch-sizes``
  entry, amortizing one pool per batch.

Every batched run's answers are asserted *identical* (tid and score) to
the per-query answers, and the batch-size-1 run's physical reads are
asserted identical to the per-query reads — batching is purely an
execution-protocol change, never a semantics change.

Outputs, under ``results_dir``:

* ``BENCH_abl_batch.json`` — wall-clock, total reads, and posting-page
  reads per configuration, with speedups and savings vs per-query;
* ``perquery/`` and ``batch1/`` — compare_io.py-compatible result dirs
  (per-point mean reads) whose diff must be clean, used by CI's
  perf-smoke job.

``--assert-speedup S`` fails the run unless the *largest* batch size is
at least ``S``x faster than per-query; ``--assert-io-savings F`` fails
unless it saves at least fraction ``F`` of posting-page reads.
"""

import argparse
import json
import sys
import time
from pathlib import Path

from repro.bench.experiments import ExperimentScale, _inverted, _workload
from repro.core.kernels import kernel_mode
from repro.exec import BatchExecutor

_SCALES = {
    "quick": ExperimentScale.quick,
    "default": ExperimentScale.default,
    "paper": ExperimentScale.paper,
}

#: Fig-5 synthetic dataset kinds.
DATASETS = ("uniform", "pairwise")

#: Query kinds per point.
KINDS = ("threshold", "topk")

#: Inverted-index strategy under test (fig5's).
STRATEGY = "highest_prob_first"


def _answer_key(result):
    return [(match.tid, match.score) for match in result.matches]


def _point_queries(calibrated_queries, kind):
    return [
        cq.threshold_query() if kind == "threshold" else cq.top_k_query()
        for cq in calibrated_queries
    ]


def _tag_delta(before, after):
    return {
        tag: after[tag] - before.get(tag, 0)
        for tag in after
        if after[tag] != before.get(tag, 0)
    }


def run_point_per_query(index, queries, pool_size):
    """Per-query protocol over one point; returns (answers, reads, tags, wall).

    This is exactly the paper's regime (and what
    :func:`repro.bench.harness.measure_query` measures): a fresh buffer
    pool per query, timed without the measurement harness's snapshot
    overhead so the wall-clock comparison against the batch executor is
    apples to apples.
    """
    from repro.storage.buffer import BufferPool

    tags_before = index.disk.snapshot_tags()
    before = index.disk.stats.snapshot()
    answers = []
    started = time.perf_counter()
    for query in queries:
        index.pool = BufferPool(index.disk, pool_size)
        answers.append(index.execute(query, strategy=STRATEGY))
    wall = time.perf_counter() - started
    delta = index.disk.stats.delta_since(before)
    tags = _tag_delta(tags_before, index.disk.snapshot_tags())
    return answers, delta.reads, tags, wall


def run_point_batched(index, queries, pool_size, batch_size):
    """Batched protocol over one point; returns (answers, reads, tags, wall)."""
    executor = BatchExecutor(
        index, strategy=STRATEGY, pool_size=pool_size, batch_size=batch_size
    )
    tags_before = index.disk.snapshot_tags()
    before = index.disk.stats.snapshot()
    started = time.perf_counter()
    answers = executor.run(queries)
    wall = time.perf_counter() - started
    delta = index.disk.stats.delta_since(before)
    tags = _tag_delta(tags_before, index.disk.snapshot_tags())
    return answers, delta.reads, tags, wall


def _series_point(x, reads, tags, answers):
    n = len(answers)
    return {
        "x": x,
        "mean_reads": reads / n,
        "num_queries": n,
        "mean_result_size": sum(len(a) for a in answers) / n,
        "mean_reads_by_tag": {tag: count / n for tag, count in tags.items()},
    }


def _write_compare_dir(directory, series, batch_declared):
    directory.mkdir(parents=True, exist_ok=True)
    (directory / "BENCH_abl_batch_points.json").write_text(
        json.dumps({"series": series}, indent=2) + "\n"
    )
    (directory / "BENCH_summary.json").write_text(
        json.dumps(
            {"kernel": kernel_mode(), "batch": batch_declared}, indent=2
        )
        + "\n"
    )


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Batched vs per-query execution ablation."
    )
    parser.add_argument(
        "results_dir",
        nargs="?",
        type=Path,
        default=Path("benchmarks/results/abl_batch"),
    )
    parser.add_argument("--scale", choices=sorted(_SCALES), default="quick")
    parser.add_argument(
        "--queries",
        type=int,
        default=200,
        help="minimum total workload size (default: 200)",
    )
    parser.add_argument(
        "--batch-sizes",
        default="1,8,32",
        help="comma-separated batch sizes (default: 1,8,32)",
    )
    parser.add_argument(
        "--assert-speedup",
        type=float,
        default=None,
        metavar="S",
        help="fail unless the largest batch size is >= S x faster",
    )
    parser.add_argument(
        "--assert-io-savings",
        type=float,
        default=None,
        metavar="F",
        help="fail unless it saves >= fraction F of posting-page reads",
    )
    args = parser.parse_args(argv)

    scale = _SCALES[args.scale]()
    batch_sizes = sorted(
        {int(raw) for raw in args.batch_sizes.split(",") if raw.strip()}
    )
    points = len(DATASETS) * len(KINDS) * len(scale.selectivities)
    qpp = -(-args.queries // points)  # ceil division
    total_queries = points * qpp
    print(
        f"scale={args.scale} kernel={kernel_mode()} "
        f"queries={total_queries} ({points} points x {qpp}) "
        f"batch_sizes={batch_sizes}"
    )

    per_query = {"wall": 0.0, "reads": 0, "posting_reads": 0}
    batched = {
        size: {"wall": 0.0, "reads": 0, "posting_reads": 0}
        for size in batch_sizes
    }
    pq_series = {}
    batch1_series = {}
    for dataset in DATASETS:
        key = (dataset, scale.synth_tuples, 0, scale.seed)
        index = _inverted(key)
        workload = _workload(
            key, scale.selectivities, qpp, scale.seed
        )
        for kind in KINDS:
            series_name = f"{dataset}-{kind}"
            pq_series[series_name] = []
            batch1_series[series_name] = []
            for selectivity, calibrated in workload.items():
                queries = _point_queries(calibrated, kind)
                baseline, pq_reads, pq_tags, wall = run_point_per_query(
                    index, queries, scale.pool_size
                )
                per_query["wall"] += wall
                per_query["reads"] += pq_reads
                per_query["posting_reads"] += pq_tags.get("postings", 0)
                pq_series[series_name].append(
                    _series_point(
                        selectivity * 100.0, pq_reads, pq_tags, baseline
                    )
                )
                for size in batch_sizes:
                    answers, reads, tags, wall = run_point_batched(
                        index, queries, scale.pool_size, size
                    )
                    batched[size]["wall"] += wall
                    batched[size]["reads"] += reads
                    batched[size]["posting_reads"] += tags.get("postings", 0)
                    for got, expected in zip(answers, baseline):
                        if _answer_key(got) != _answer_key(expected):
                            raise AssertionError(
                                f"batch={size} answers diverge on "
                                f"{series_name} @ {selectivity}"
                            )
                    if size == 1:
                        if reads != pq_reads:
                            raise AssertionError(
                                f"batch=1 reads {reads} != per-query "
                                f"{pq_reads} on {series_name} @ {selectivity}"
                            )
                        batch1_series[series_name].append(
                            _series_point(
                                selectivity * 100.0, reads, tags, answers
                            )
                        )

    payload = {
        "config": {
            "scale": args.scale,
            "kernel": kernel_mode(),
            "strategy": STRATEGY,
            "pool_size": scale.pool_size,
            "datasets": list(DATASETS),
            "total_queries": total_queries,
            "batch_sizes": batch_sizes,
        },
        "per_query": {
            "wall_clock_seconds": round(per_query["wall"], 4),
            "reads": per_query["reads"],
            "posting_reads": per_query["posting_reads"],
        },
        "batched": {},
    }
    for size in batch_sizes:
        stats = batched[size]
        payload["batched"][str(size)] = {
            "wall_clock_seconds": round(stats["wall"], 4),
            "reads": stats["reads"],
            "posting_reads": stats["posting_reads"],
            "speedup": round(per_query["wall"] / stats["wall"], 3)
            if stats["wall"] > 0
            else None,
            "read_savings": round(
                1.0 - stats["reads"] / per_query["reads"], 4
            )
            if per_query["reads"]
            else 0.0,
            "posting_read_savings": round(
                1.0 - stats["posting_reads"] / per_query["posting_reads"], 4
            )
            if per_query["posting_reads"]
            else 0.0,
        }
        print(
            f"batch={size:3d}: wall={stats['wall']:.3f}s "
            f"(speedup {payload['batched'][str(size)]['speedup']}x)  "
            f"reads={stats['reads']} "
            f"posting_savings="
            f"{payload['batched'][str(size)]['posting_read_savings']:.1%}"
        )
    print(
        f"per-query: wall={per_query['wall']:.3f}s "
        f"reads={per_query['reads']} "
        f"posting_reads={per_query['posting_reads']}"
    )

    results_dir = args.results_dir
    results_dir.mkdir(parents=True, exist_ok=True)
    (results_dir / "BENCH_abl_batch.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    _write_compare_dir(results_dir / "perquery", pq_series, 1)
    if 1 in batch_sizes:
        _write_compare_dir(results_dir / "batch1", batch1_series, 1)

    failures = []
    largest = batch_sizes[-1]
    stats = payload["batched"][str(largest)]
    if args.assert_speedup is not None and (
        stats["speedup"] is None or stats["speedup"] < args.assert_speedup
    ):
        failures.append(
            f"batch={largest} speedup {stats['speedup']} "
            f"< required {args.assert_speedup}"
        )
    if (
        args.assert_io_savings is not None
        and stats["posting_read_savings"] < args.assert_io_savings
    ):
        failures.append(
            f"batch={largest} posting-read savings "
            f"{stats['posting_read_savings']:.1%} "
            f"< required {args.assert_io_savings:.1%}"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
