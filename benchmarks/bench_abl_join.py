#!/usr/bin/env python
"""Ablation A6 — PETJ access paths, plus the block rank-join ablation.

Beyond the paper: Definition 6 defines the joins but the evaluation only
measures selections; this bench measures per-outer-tuple I/O for an
index-nested-loop self-join.

Run as a script for the block rank-join ablation::

    python benchmarks/bench_abl_join.py [results_dir]
        [--scale quick|default|paper] [--outer N] [--top-k K]
        [--block-sizes 1,4,16,64] [--assert-speedup S]
        [--assert-io-savings F]

A Figure 5-scale uniform self-join workload (PETJ at the join ablation's
thresholds plus one PEJ-top-k point) runs through:

* **per-probe** — the paper's protocol: a fresh ``pool_size``-frame
  buffer pool per probe (the baseline for wall-clock and reads);
* **blocked** — :class:`repro.exec.BlockJoinExecutor` at each
  ``--block-sizes`` entry (one fresh pool per *block*, shared-scan PETJ
  scoring, grouped probing, and adaptive top-k thresholds).

Every blocked run's pair set (left tid, right tid, and bit-exact score)
is asserted identical to the per-probe pairs, and the block-size-1 run's
physical reads are asserted identical to the per-probe reads — blocking
is purely an execution-protocol change, never a semantics change.

Outputs, under ``results_dir``:

* ``BENCH_abl_join_blocks.json`` — wall-clock, total reads, and
  posting-page reads per block size, with speedups and savings vs
  per-probe;
* ``perprobe/`` and ``block1/`` — compare_io.py-compatible result dirs
  (per-point mean reads) whose diff must be clean, used by CI's
  perf-smoke job.

``--assert-speedup S`` / ``--assert-io-savings F`` gate block size 16
(or the largest configured size) against the per-probe baseline.
"""

import argparse
import json
import sys
import time
from pathlib import Path

from repro.bench import ablation_join
from repro.bench.experiments import ExperimentScale, _dataset, _inverted
from repro.core.joins import BoundedPairHeap, JoinPair
from repro.core.kernels import kernel_mode
from repro.core.queries import EqualityThresholdQuery, EqualityTopKQuery
from repro.core.relation import UncertainRelation
from repro.exec import BlockJoinExecutor
from repro.storage.buffer import BufferPool

_SCALES = {
    "quick": ExperimentScale.quick,
    "default": ExperimentScale.default,
    "paper": ExperimentScale.paper,
}

#: PETJ thresholds, matching the A6 ablation's x axis.
THRESHOLDS = (0.2, 0.3, 0.4)

#: Inverted-index strategy probes run with.
STRATEGY = "highest_prob_first"


def test_abl_join(benchmark, scale, report):
    result = benchmark.pedantic(
        ablation_join, args=(scale,), iterations=1, rounds=1
    )
    report(result, benchmark)
    assert set(result.series) == {"Join-Inv-Thres", "Join-PDR-Thres"}


def _pair_key(pairs):
    return [(p.left_tid, p.right_tid, p.score) for p in pairs]


def _tag_delta(before, after):
    return {
        tag: after[tag] - before.get(tag, 0)
        for tag in after
        if after[tag] != before.get(tag, 0)
    }


def _measured(index, run):
    """Run ``run()`` against ``index``; returns (pairs, reads, tags, wall)."""
    tags_before = index.disk.snapshot_tags()
    before = index.disk.stats.snapshot()
    started = time.perf_counter()
    pairs = run()
    wall = time.perf_counter() - started
    delta = index.disk.stats.delta_since(before)
    return pairs, delta.reads, _tag_delta(tags_before, index.disk.snapshot_tags()), wall


def run_point_per_probe(index, outer, pool_size, *, threshold=None, k=None):
    """The paper's per-probe protocol: a fresh pool per outer tuple."""

    def run():
        heap = BoundedPairHeap(k) if k is not None else None
        pairs = []
        for left_tid in outer.tids():
            index.pool = BufferPool(index.disk, pool_size)
            if threshold is not None:
                query = EqualityThresholdQuery(outer.uda_of(left_tid), threshold)
            else:
                query = EqualityTopKQuery(outer.uda_of(left_tid), k)
            for match in index.execute(query, strategy=STRATEGY):
                pair = JoinPair(
                    left_tid=left_tid, right_tid=match.tid, score=match.score
                )
                if heap is not None:
                    heap.push(pair)
                else:
                    pairs.append(pair)
        return heap.sorted_pairs() if heap is not None else sorted(pairs)

    return _measured(index, run)


def run_point_blocked(
    relation, index, outer, pool_size, block_size, *, threshold=None, k=None
):
    """The block engine at ``block_size`` (fresh pool per block)."""
    engine = BlockJoinExecutor(
        relation,
        index,
        strategy=STRATEGY,
        block_size=block_size,
        pool_size=pool_size,
    )

    def run():
        if threshold is not None:
            return list(engine.petj(outer, threshold))
        return list(engine.pej_top_k(outer, k))

    return _measured(index, run)


def _series_point(x, reads, tags, pairs, probes):
    return {
        "x": x,
        "mean_reads": reads / probes,
        "num_queries": probes,
        "mean_result_size": len(pairs) / probes,
        "mean_reads_by_tag": {
            tag: count / probes for tag, count in tags.items()
        },
    }


def _write_compare_dir(directory, series, block_declared):
    directory.mkdir(parents=True, exist_ok=True)
    (directory / "BENCH_abl_join_points.json").write_text(
        json.dumps({"series": series}, indent=2) + "\n"
    )
    (directory / "BENCH_summary.json").write_text(
        json.dumps(
            {"kernel": kernel_mode(), "join_block": block_declared}, indent=2
        )
        + "\n"
    )


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Block rank-join vs per-probe execution ablation."
    )
    parser.add_argument(
        "results_dir",
        nargs="?",
        type=Path,
        default=Path("benchmarks/results/abl_join_blocks"),
    )
    parser.add_argument("--scale", choices=sorted(_SCALES), default="quick")
    parser.add_argument(
        "--outer",
        type=int,
        default=96,
        help="outer tuples in the self-join sample (default: 96)",
    )
    parser.add_argument(
        "--top-k",
        type=int,
        default=10,
        help="k for the PEJ-top-k point (default: 10)",
    )
    parser.add_argument(
        "--block-sizes",
        default="1,4,16,64",
        help="comma-separated join block sizes (default: 1,4,16,64)",
    )
    parser.add_argument(
        "--assert-speedup",
        type=float,
        default=None,
        metavar="S",
        help="fail unless block 16 (or the largest size) is >= S x faster",
    )
    parser.add_argument(
        "--assert-io-savings",
        type=float,
        default=None,
        metavar="F",
        help="fail unless it saves >= fraction F of posting-page reads",
    )
    args = parser.parse_args(argv)

    scale = _SCALES[args.scale]()
    block_sizes = sorted(
        {int(raw) for raw in args.block_sizes.split(",") if raw.strip()}
    )
    key = ("uniform", scale.synth_tuples, 0, scale.seed)
    relation = _dataset(*key)
    index = _inverted(key)
    sample = min(scale.synth_tuples, args.outer)
    outer = UncertainRelation(relation.domain, name="outer")
    for tid in range(sample):
        outer.append(relation.uda_of(tid))
    points = [("petj", threshold) for threshold in THRESHOLDS]
    points.append(("pej_top_k", args.top_k))
    print(
        f"scale={args.scale} kernel={kernel_mode()} outer={sample} "
        f"points={len(points)} block_sizes={block_sizes}"
    )

    per_probe = {"wall": 0.0, "reads": 0, "posting_reads": 0}
    blocked = {
        size: {"wall": 0.0, "reads": 0, "posting_reads": 0}
        for size in block_sizes
    }
    pp_series = {"Join-Inv-Blocks": []}
    block1_series = {"Join-Inv-Blocks": []}
    for kind, x in points:
        kw = {"threshold": x} if kind == "petj" else {"k": x}
        baseline, pp_reads, pp_tags, wall = run_point_per_probe(
            index, outer, scale.pool_size, **kw
        )
        per_probe["wall"] += wall
        per_probe["reads"] += pp_reads
        per_probe["posting_reads"] += pp_tags.get("postings", 0)
        pp_series["Join-Inv-Blocks"].append(
            _series_point(float(x), pp_reads, pp_tags, baseline, sample)
        )
        for size in block_sizes:
            pairs, reads, tags, wall = run_point_blocked(
                relation, index, outer, scale.pool_size, size, **kw
            )
            blocked[size]["wall"] += wall
            blocked[size]["reads"] += reads
            blocked[size]["posting_reads"] += tags.get("postings", 0)
            if _pair_key(pairs) != _pair_key(baseline):
                raise AssertionError(
                    f"block={size} pairs diverge on {kind} @ {x}"
                )
            if size == 1:
                if reads != pp_reads:
                    raise AssertionError(
                        f"block=1 reads {reads} != per-probe {pp_reads} "
                        f"on {kind} @ {x}"
                    )
                block1_series["Join-Inv-Blocks"].append(
                    _series_point(float(x), reads, tags, pairs, sample)
                )

    payload = {
        "config": {
            "scale": args.scale,
            "kernel": kernel_mode(),
            "strategy": STRATEGY,
            "pool_size": scale.pool_size,
            "outer_tuples": sample,
            "thresholds": list(THRESHOLDS),
            "top_k": args.top_k,
            "block_sizes": block_sizes,
        },
        "per_probe": {
            "wall_clock_seconds": round(per_probe["wall"], 4),
            "reads": per_probe["reads"],
            "posting_reads": per_probe["posting_reads"],
        },
        "blocked": {},
    }
    for size in block_sizes:
        stats = blocked[size]
        payload["blocked"][str(size)] = {
            "wall_clock_seconds": round(stats["wall"], 4),
            "reads": stats["reads"],
            "posting_reads": stats["posting_reads"],
            "speedup": round(per_probe["wall"] / stats["wall"], 3)
            if stats["wall"] > 0
            else None,
            "read_savings": round(
                1.0 - stats["reads"] / per_probe["reads"], 4
            )
            if per_probe["reads"]
            else 0.0,
            "posting_read_savings": round(
                1.0 - stats["posting_reads"] / per_probe["posting_reads"], 4
            )
            if per_probe["posting_reads"]
            else 0.0,
        }
        print(
            f"block={size:3d}: wall={stats['wall']:.3f}s "
            f"(speedup {payload['blocked'][str(size)]['speedup']}x)  "
            f"reads={stats['reads']} "
            f"posting_savings="
            f"{payload['blocked'][str(size)]['posting_read_savings']:.1%}"
        )
    print(
        f"per-probe: wall={per_probe['wall']:.3f}s "
        f"reads={per_probe['reads']} "
        f"posting_reads={per_probe['posting_reads']}"
    )

    results_dir = args.results_dir
    results_dir.mkdir(parents=True, exist_ok=True)
    (results_dir / "BENCH_abl_join_blocks.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    _write_compare_dir(results_dir / "perprobe", pp_series, 1)
    if 1 in block_sizes:
        _write_compare_dir(results_dir / "block1", block1_series, 1)

    failures = []
    gate = 16 if 16 in block_sizes else block_sizes[-1]
    stats = payload["blocked"][str(gate)]
    if args.assert_speedup is not None and (
        stats["speedup"] is None or stats["speedup"] < args.assert_speedup
    ):
        failures.append(
            f"block={gate} speedup {stats['speedup']} "
            f"< required {args.assert_speedup}"
        )
    if (
        args.assert_io_savings is not None
        and stats["posting_read_savings"] < args.assert_io_savings
    ):
        failures.append(
            f"block={gate} posting-read savings "
            f"{stats['posting_read_savings']:.1%} "
            f"< required {args.assert_io_savings:.1%}"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
