"""Ablation A6 — PETJ access paths: probing inverted index vs PDR-tree.

Beyond the paper: Definition 6 defines the joins but the evaluation only
measures selections; this bench measures per-outer-tuple I/O for an
index-nested-loop self-join.
"""

from repro.bench import ablation_join


def test_abl_join(benchmark, scale, report):
    result = benchmark.pedantic(
        ablation_join, args=(scale,), iterations=1, rounds=1
    )
    report(result, benchmark)
    assert set(result.series) == {"Join-Inv-Thres", "Join-PDR-Thres"}
