"""Figure 9 — scalability with domain size (Gen3).

Paper shape: the inverted index *improves* as the domain grows (one list
per value, so lists shorten); the PDR-tree rises then falls across the
sweep.
"""

from repro.bench import figure9


def test_fig09_domain_size(benchmark, scale, report):
    result = benchmark.pedantic(figure9, args=(scale,), iterations=1, rounds=1)
    report(result, benchmark)
    inv = result.series_values("Gen3-Inv-Thres")
    # Larger domains help the inverted index: the largest domain costs
    # less than the series' peak.
    assert inv[-1] < max(inv)
