"""Figure 7 — inverted index vs PDR-tree on CRM2 (dense real-style data).

Paper shape: the PDR-tree significantly outperforms the inverted index,
and CRM2 costs sit roughly an order of magnitude above CRM1's
(unsupervised fuzzy memberships are dense; classifier posteriors are
sparse).
"""

from repro.bench import figure7


def test_fig07_crm2(benchmark, scale, report):
    result = benchmark.pedantic(figure7, args=(scale,), iterations=1, rounds=1)
    report(result, benchmark)
    inv = result.series_values("CRM2-Inv-Thres")
    pdr = result.series_values("CRM2-PDR-Thres")
    assert all(p < i for p, i in zip(pdr, inv))
