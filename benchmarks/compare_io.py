#!/usr/bin/env python
"""Diff the simulated I/O numbers of two run_all.py result directories.

Usage::

    python benchmarks/compare_io.py results_a results_b

Compares only the *deterministic* fields of each ``BENCH_<name>.json``
(x, mean_reads, mean_reads_by_tag, num_queries, mean_result_size) — the
quantities the paper's cost model defines, which must be bit-identical
across ``--jobs`` counts and with the decoded cache on or off.
Wall-clock and cache hit-rate fields legitimately differ and are
ignored.  Exits nonzero, listing every divergence, if the directories
disagree.
"""

import json
import sys
from pathlib import Path

#: Per-point fields the I/O model fully determines.
DETERMINISTIC_FIELDS = (
    "x",
    "mean_reads",
    "num_queries",
    "mean_result_size",
    "mean_reads_by_tag",
)


def _io_view(payload: dict) -> dict:
    """Strip a BENCH json down to its deterministic I/O content."""
    return {
        name: [
            {field: point[field] for field in DETERMINISTIC_FIELDS}
            for point in points
        ]
        for name, points in payload["series"].items()
    }


#: BENCH_summary.json keys that identify the execution protocol.  Reads
#: are only comparable between runs with the same protocol: a batched run
#: (batch > 1) or a block join run (join_block > 1) legally reads fewer
#: pages, and kernel mode is recorded so a hypothetical divergence can
#: be attributed.  ``mode`` separates measurement-protocol runs
#: ("measure", the only mode goldens are recorded under) from
#: serving-mode runs, whose reads depend on arrival history and are
#: never golden-comparable (docs/serving.md).  ``backend`` names the
#: storage backend under the disk: simulated I/O counts are
#: backend-independent by construction, but committed goldens bind to
#: the ``simulated`` backend only, so a cross-backend diff is refused
#: rather than quietly blessed (docs/storage-backends.md).  ``shards``
#: and ``transport`` declare the scatter-gather protocol
#: (docs/sharding.md): reads from runs with different shard counts are
#: never comparable (per-shard pools and B-tree roots change the page
#: economics), so a cross-shard-count diff is refused; ``shards: 1``
#: result dirs are bit-comparable with single-node runs by
#: construction, which CI asserts through this tool.  Older result
#: dirs predate these keys; a missing key is compatible with anything.
#: ``sketch`` declares the similarity pre-filter mode
#: (docs/sketch-prefilter.md): ``"exact"`` legally reads fewer tuple
#: pages (plus some sketch pages) than ``"off"`` while answering
#: bit-identically, and ``"approx"`` changes the answers themselves —
#: so reads are only comparable within one mode and a cross-mode diff
#: is refused.
PROTOCOL_KEYS = (
    "kernel", "batch", "join_block", "mode", "backend", "shards",
    "transport", "sketch",
)


def _protocol_view(results_dir: Path) -> dict:
    """The declared execution protocol of a result dir (may be empty)."""
    summary = results_dir / "BENCH_summary.json"
    if not summary.exists():
        return {}
    payload = json.loads(summary.read_text())
    return {
        key: payload[key] for key in PROTOCOL_KEYS if key in payload
    }


def compare_dirs(dir_a: Path, dir_b: Path) -> list[str]:
    """Return human-readable divergences between two result directories."""
    problems = []
    protocol_a = _protocol_view(dir_a)
    protocol_b = _protocol_view(dir_b)
    for key in PROTOCOL_KEYS:
        if (
            key in protocol_a
            and key in protocol_b
            and protocol_a[key] != protocol_b[key]
        ):
            problems.append(
                f"refusing to diff: {key} differs "
                f"({dir_a}: {protocol_a[key]!r}, {dir_b}: {protocol_b[key]!r}) "
                "— I/O numbers are only comparable under one execution "
                "protocol"
            )
    if problems:
        return problems
    files_a = {p.name for p in dir_a.glob("BENCH_*.json")}
    files_b = {p.name for p in dir_b.glob("BENCH_*.json")}
    files_a.discard("BENCH_summary.json")
    files_b.discard("BENCH_summary.json")
    for missing in sorted(files_a ^ files_b):
        where = dir_b if missing in files_a else dir_a
        problems.append(f"{missing}: missing from {where}")
    for name in sorted(files_a & files_b):
        view_a = _io_view(json.loads((dir_a / name).read_text()))
        view_b = _io_view(json.loads((dir_b / name).read_text()))
        if set(view_a) != set(view_b):
            problems.append(
                f"{name}: series differ "
                f"({sorted(set(view_a) ^ set(view_b))})"
            )
            continue
        for series in sorted(view_a):
            if view_a[series] != view_b[series]:
                problems.append(
                    f"{name} / {series}: I/O numbers diverge\n"
                    f"  {dir_a}: {view_a[series]}\n"
                    f"  {dir_b}: {view_b[series]}"
                )
    if not files_a and not files_b:
        problems.append("no BENCH_*.json files found in either directory")
    return problems


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    dir_a, dir_b = Path(argv[0]), Path(argv[1])
    problems = compare_dirs(dir_a, dir_b)
    if problems:
        for problem in problems:
            print(f"DIVERGENCE: {problem}")
        return 1
    count = len(
        [p for p in dir_a.glob("BENCH_*.json") if p.name != "BENCH_summary.json"]
    )
    print(f"OK: simulated I/O identical across {dir_a} and {dir_b} "
          f"({count} experiment files)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
