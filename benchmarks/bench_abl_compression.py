"""Ablation A2 — MBR boundary compression on a large domain (Gen3).

Beyond the paper: Section 3.2 proposes set-signature folding and
discretized over-estimation but does not evaluate them; this bench
measures their I/O effect where they matter (the largest Gen3 domain,
where raw boundaries shrink internal fan-out).
"""

from repro.bench import ablation_compression


def test_abl_compression(benchmark, scale, report):
    result = benchmark.pedantic(
        ablation_compression, args=(scale,), iterations=1, rounds=1
    )
    report(result, benchmark)
    schemes = {name.split("-")[-1] for name in result.series}
    assert schemes == {"Raw", "Disc4", "Fold", "FoldDisc2"}
