"""Ablation A5 — item-popularity skew (Zipf) sensitivity.

Beyond the paper: real categorical attributes are skewed; this bench
sweeps a Zipf exponent to see how hot posting lists affect each
structure.
"""

from repro.bench import ablation_skew


def test_abl_skew(benchmark, scale, report):
    result = benchmark.pedantic(
        ablation_skew, args=(scale,), iterations=1, rounds=1
    )
    report(result, benchmark)
    assert set(result.series) == {"Zipf-Inv-Thres", "Zipf-PDR-Thres"}
