#!/usr/bin/env python
"""Ablation: sketch pre-filtering for similarity queries.

Usage::

    python benchmarks/bench_abl_sketch.py [results_dir]
        [--quick] [--tuples N] [--queries-per-point N]
        [--bands B [B ...]] [--assert-recall R] [--trace PATH]

Runs a similarity workload — DSTQ threshold probes and DSQ-top-k, over
l1/l2/KL — whose queries are *perturbed copies of stored tuples*
(same support, jittered probabilities), the regime sketch pre-filtering
targets: most of the relation is provably far from the query, and the
LSH candidate generator can actually find the near-duplicates.  The
dataset is a clustered variant of the paper's sparse **Gen3** family
(grouped supports over a 100-item domain, bounded group sizes, tuples
stored group-contiguously): support sets genuinely differ across
tuples — which is what both the fingerprint deficit bound and MinHash
banding key on — and a query's few true neighbors share heap pages, so
pruning converts directly into skipped reads.  (The paper's dense
Uniform dataset is the sketch's worst case — every tuple spans the
whole 5-item domain, so no support-based filter can separate anything
there.)

Legs, per divergence and query kind:

* **off** — the unfiltered scan via
  :func:`repro.bench.harness.measure_query` (fresh 100-frame pool per
  query).  Its answers define correctness; its reads are the baseline;
* **exact** — the same queries under ``REPRO_SKETCH=exact``.  Gated
  *bit-identical* (tids, scores, tie order) and, summed over the
  inverted-index workload, **strictly fewer total physical reads** —
  the sketch scan plus surviving verifications must undercut the full
  heap scan, or the pre-filter has no reason to exist;
* **pdr off/exact** — the same differential on the PDR-tree (identity
  gate only: the tree's leaf grouping already localizes I/O, so the
  read win is reported, not gated);
* **approx** at each ``--bands`` setting — LSH-only candidates;
  *measured recall* against the off answers plus the read savings, the
  recall/IO trade-off curve (docs/sketch-prefilter.md).  ``--assert-recall R``
  gates recall at the *default* band count (CI's recall floor).

Outputs, under ``results_dir``:

* ``BENCH_abl_sketch.json`` — per-(divergence, kind) read totals, gate
  verdicts, and the recall curve;
* ``measure_off/`` and ``measure_exact/`` — compare_io.py result dirs
  from the two exact-answer legs.  Their summaries declare
  ``sketch: "off"`` / ``"exact"``, so compare_io *refuses* to diff them
  against each other (reads legally differ across modes) while CI diffs
  each against its committed golden.
"""

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.bench.harness import IndexUnderTest, measure_query
from repro.core.domain import CategoricalDomain
from repro.core.kernels import kernel_mode
from repro.core.relation import UncertainRelation
from repro.core.queries import SimilarityThresholdQuery, SimilarityTopKQuery
from repro.core.uda import UncertainAttribute
from repro.invindex.index import ProbabilisticInvertedIndex
from repro.obs.trace import tracing_to_path
from repro.pdrtree.tree import PDRTree
from repro.sketch import SketchParams, sketch_override

#: Divergences with sound sketch lower bounds (repro.sketch.bounds).
DIVERGENCES = ("l1", "l2", "kl")

#: Fixed DSTQ thresholds: tight enough that a perturbed-copy query
#: matches its source tuple and near-duplicates (mostly same-group
#: tuples) only, the selective regime where pruning pays.  Tuples from
#: disjoint Gen3 groups sit at l1 = 2 exactly.
THRESHOLDS = {"l1": 0.35, "l2": 0.2, "kl": 0.8}

#: Gen3-style domain size: large enough that group supports rarely
#: coincide.
DOMAIN_SIZE = 100

#: Mean tuples per support group — bounded (unlike gen3_dataset, whose
#: group population scales with the relation), so a query's candidate
#: set stays a handful of pages at any --tuples.
GROUP_MEMBERS = 12


def _grouped_dataset(num_tuples, seed):
    """Gen3-style grouped supports, stored group-contiguously.

    Like :func:`repro.datagen.synthetic.gen3_dataset`, item groups are
    sampled from the domain with geometric sizes and each tuple spreads
    random probabilities over its group.  Two deliberate differences:
    the number of groups scales with the relation (mean
    :data:`GROUP_MEMBERS` tuples each), and tuples are appended
    group-by-group — clustered storage, the common case for data that
    arrives in runs (per customer, per day, per source).
    """
    rng = np.random.default_rng(seed)
    domain = CategoricalDomain.of_size(DOMAIN_SIZE)
    relation = UncertainRelation(domain, name=f"GroupedGen3-{num_tuples}")
    num_groups = max(8, num_tuples // GROUP_MEMBERS)
    groups = []
    for _ in range(num_groups):
        # Support sizes bounded to [8, 16]: large enough that every
        # group holds top-k answers and heap records dominate sketch
        # records, small enough that the 64-bit fingerprint stays
        # sparse (<= 25% of bits set, so Bloom false positives rarely
        # stack high enough to defeat the deficit bound).
        size = max(8, min(int(rng.geometric(1.0 / 12)), 16))
        groups.append(
            np.sort(rng.choice(DOMAIN_SIZE, size=size, replace=False))
        )
    counts = rng.multinomial(
        num_tuples, np.full(num_groups, 1.0 / num_groups)
    )
    for group, count in zip(groups, counts.tolist()):
        for _ in range(count):
            # Concentrated Dirichlet (alpha = 5): every group member is
            # a near-duplicate distribution over the shared support, so
            # a group is a cluster of genuinely-similar tuples.  Flat
            # in-support mass also makes the fingerprint deficit bound
            # *collision-robust*: no single item carries enough mass for
            # one Bloom false-positive bit to drag the bound below a
            # selective threshold (each colliding item forfeits only
            # ~1/|support| of the deficit).
            probs = rng.dirichlet(np.full(len(group), 5.0))
            relation.append(UncertainAttribute(group, probs))
    return relation

TOP_K = 5

DEFAULT_TUPLES = 6000
DEFAULT_BANDS = (8, 16, 32)

#: The sweep's band default — SketchParams().bands — is the setting CI
#: gates recall at.
DEFAULT_BAND_SETTING = SketchParams().bands


def _perturbed_queries(relation, count, seed):
    """Similarity probes: stored tuples with jittered probabilities.

    The support set is preserved (MinHash signatures depend only on
    support, so the source tuple is always LSH-reachable); only the
    masses move, by a bounded multiplicative jitter.
    """
    rng = np.random.default_rng(seed)
    tids = rng.choice(len(relation), size=count, replace=False)
    queries = []
    for tid in tids.tolist():
        uda = relation.uda_of(tid)
        probs = np.asarray(uda.probs, dtype=np.float64)
        jitter = rng.uniform(0.7, 1.3, size=len(probs))
        probs = probs * jitter
        probs = probs / probs.sum()
        queries.append(
            UncertainAttribute(
                [int(item) for item in uda.items],
                [float(p) for p in probs],
            )
        )
    return queries


def _answers(result):
    return [(m.tid, m.score) for m in result.matches]


def _measure_leg(under, queries, pool_size, mode):
    """Measure every query under one sketch mode; return leg + answers."""
    reads, tags, sizes, answers = [], [], [], []
    started = time.perf_counter()
    with sketch_override(mode):
        for query in queries:
            measured = measure_query(under, query, pool_size)
            reads.append(measured.reads)
            tags.append(dict(measured.reads_by_tag))
            sizes.append(measured.result_size)
            answers.append(_answers(under.execute(query)))
    wall = time.perf_counter() - started
    total_tags = {}
    for per_query in tags:
        for tag, count in per_query.items():
            total_tags[tag] = total_tags.get(tag, 0) + count
    leg = {
        "reads": sum(reads),
        "reads_by_tag": total_tags,
        "wall_clock_seconds": round(wall, 4),
    }
    return leg, answers, (reads, tags, sizes)


def _series_point(x, reads_list, tags_list, sizes):
    n = len(reads_list)
    tags = {}
    for per_query in tags_list:
        for tag, count in per_query.items():
            tags[tag] = tags.get(tag, 0) + count
    return {
        "x": x,
        "mean_reads": sum(reads_list) / n,
        "num_queries": n,
        "mean_result_size": sum(sizes) / n,
        "mean_reads_by_tag": {tag: count / n for tag, count in tags.items()},
    }


def _recall(off_answers, approx_answers):
    """Mean per-query recall of the off answers' tids."""
    recalls = []
    for off, approx in zip(off_answers, approx_answers):
        want = {tid for tid, _ in off}
        if not want:
            continue
        got = {tid for tid, _ in approx}
        recalls.append(len(want & got) / len(want))
    return round(sum(recalls) / len(recalls), 4) if recalls else 1.0


def _write_measure_dir(directory, series, sketch_mode):
    directory.mkdir(parents=True, exist_ok=True)
    (directory / "BENCH_abl_sketch_points.json").write_text(
        json.dumps({"series": series}, indent=2) + "\n"
    )
    summary = {
        "kernel": kernel_mode(),
        "batch": 1,
        "mode": "measure",
        "shards": 1,
        "transport": "local",
        "sketch": sketch_mode,
    }
    (directory / "BENCH_summary.json").write_text(
        json.dumps(summary, indent=2) + "\n"
    )


def _run(args, pool_size):
    relation = _grouped_dataset(args.tuples, seed=7)
    probes = _perturbed_queries(relation, args.queries_per_point, seed=23)

    inverted = ProbabilisticInvertedIndex(len(relation.domain))
    inverted.build(relation)
    inverted.build_sketch()
    tree = PDRTree(len(relation.domain))
    tree.build(relation)
    tree.build_sketch()

    violations = []
    rows = []
    off_series = {}
    exact_series = {}
    for divergence in DIVERGENCES:
        for kind in ("threshold", "topk"):
            if kind == "threshold":
                queries = [
                    SimilarityThresholdQuery(
                        q, THRESHOLDS[divergence], divergence
                    )
                    for q in probes
                ]
            else:
                queries = [
                    SimilarityTopKQuery(q, TOP_K, divergence)
                    for q in probes
                ]
            label = f"sim-{divergence}-{kind}"
            inv_under = IndexUnderTest(label, inverted)
            off, off_answers, off_points = _measure_leg(
                inv_under, queries, pool_size, "off"
            )
            exact, exact_answers, exact_points = _measure_leg(
                inv_under, queries, pool_size, "exact"
            )
            if exact_answers != off_answers:
                violations.append(f"exact answers diverge: inverted {label}")
            if exact["reads"] >= off["reads"]:
                violations.append(
                    f"exact reads {exact['reads']} not strictly below "
                    f"off {off['reads']}: inverted {label}"
                )
            if exact["reads_by_tag"].get("sketch", 0) <= 0:
                violations.append(
                    f"no reads under the 'sketch' tag: inverted {label}"
                )
            off_series[label] = [_series_point(0.0, *off_points)]
            exact_series[label] = [_series_point(0.0, *exact_points)]

            pdr_under = IndexUnderTest(f"pdr-{label}", tree)
            pdr_off, pdr_off_answers, _ = _measure_leg(
                pdr_under, queries, pool_size, "off"
            )
            pdr_exact, pdr_exact_answers, _ = _measure_leg(
                pdr_under, queries, pool_size, "exact"
            )
            if pdr_exact_answers != pdr_off_answers:
                violations.append(f"exact answers diverge: pdr {label}")
            if pdr_off_answers != off_answers:
                violations.append(
                    f"pdr answers diverge from inverted: {label}"
                )

            approx_legs = []
            for bands in sorted(set(args.bands)):
                inverted.build_sketch(SketchParams(bands=bands))
                approx, approx_answers, _ = _measure_leg(
                    inv_under, queries, pool_size, "approx"
                )
                approx_legs.append(
                    {
                        "bands": bands,
                        "reads": approx["reads"],
                        "recall": _recall(off_answers, approx_answers),
                    }
                )
            inverted.build_sketch()  # restore default-band sketch

            rows.append(
                {
                    "divergence": divergence,
                    "kind": kind,
                    "off": off,
                    "exact": exact,
                    "pdr_off": pdr_off,
                    "pdr_exact": pdr_exact,
                    "approx": approx_legs,
                }
            )
            approx_text = " ".join(
                f"b{leg['bands']}:r={leg['recall']}/io={leg['reads']}"
                for leg in approx_legs
            )
            print(
                f"{label}: off={off['reads']} exact={exact['reads']} "
                f"(sketch={exact['reads_by_tag'].get('sketch', 0)}) "
                f"pdr {pdr_off['reads']}->{pdr_exact['reads']} | "
                f"approx {approx_text}"
            )
    return rows, off_series, exact_series, violations


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Sketch pre-filtering ablation."
    )
    parser.add_argument(
        "results_dir",
        nargs="?",
        type=Path,
        default=Path("benchmarks/results/abl_sketch"),
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shrink the relation and workload to CI scale",
    )
    parser.add_argument("--tuples", type=int, default=DEFAULT_TUPLES)
    parser.add_argument(
        "--queries-per-point",
        type=int,
        default=6,
        help="similarity probes per (divergence, kind) cell",
    )
    parser.add_argument(
        "--bands", type=int, nargs="+", default=list(DEFAULT_BANDS)
    )
    parser.add_argument(
        "--assert-recall",
        type=float,
        default=None,
        metavar="R",
        help="fail unless approx recall at the default band count "
        f"({DEFAULT_BAND_SETTING}) is >= R in every cell",
    )
    parser.add_argument("--trace", type=Path, default=None, metavar="PATH")
    args = parser.parse_args(argv)
    if args.quick:
        args.tuples = min(args.tuples, 1500)
        args.queries_per_point = min(args.queries_per_point, 3)

    pool_size = 100  # the paper's measurement pool
    print(
        f"kernel={kernel_mode()} tuples={args.tuples} "
        f"queries_per_point={args.queries_per_point} "
        f"bands={sorted(set(args.bands))}"
    )
    if args.trace is not None:
        args.trace.parent.mkdir(parents=True, exist_ok=True)
        with tracing_to_path(args.trace):
            rows, off_series, exact_series, violations = _run(
                args, pool_size
            )
        print(f"trace written to {args.trace}")
    else:
        rows, off_series, exact_series, violations = _run(args, pool_size)

    if args.assert_recall is not None:
        for row in rows:
            for leg in row["approx"]:
                if (
                    leg["bands"] == DEFAULT_BAND_SETTING
                    and leg["recall"] < args.assert_recall
                ):
                    violations.append(
                        f"approx recall {leg['recall']} < required "
                        f"{args.assert_recall} at default bands: "
                        f"{row['divergence']}-{row['kind']}"
                    )

    if violations:
        for violation in violations[:20]:
            print(f"VIOLATION: {violation}", file=sys.stderr)
        print(f"FAIL: {len(violations)} gate violations", file=sys.stderr)
        return 1

    payload = {
        "config": {
            "kernel": kernel_mode(),
            "tuples": args.tuples,
            "queries_per_point": args.queries_per_point,
            "divergences": list(DIVERGENCES),
            "thresholds": dict(THRESHOLDS),
            "top_k": TOP_K,
            "bands": sorted(set(args.bands)),
            "pool_size": pool_size,
        },
        "rows": rows,
        "violations": 0,
    }
    results_dir = args.results_dir
    results_dir.mkdir(parents=True, exist_ok=True)
    (results_dir / "BENCH_abl_sketch.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    _write_measure_dir(results_dir / "measure_off", off_series, "off")
    _write_measure_dir(results_dir / "measure_exact", exact_series, "exact")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
