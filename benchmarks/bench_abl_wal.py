#!/usr/bin/env python
"""Ablation: incremental (WAL + LSM segments + compaction) vs static build.

Usage::

    python benchmarks/bench_abl_wal.py [results_dir]
        [--scale quick|default|paper] [--queries N] [--churn F]
        [--segment-tuples N] [--trace PATH]

Builds the same final tuple set two ways over Fig-5-style synthetic
datasets:

* **static** — one bulk :meth:`build`, the layout every committed
  golden was recorded against;
* **incremental** — an empty index attached to a write-ahead log, grown
  tuple-by-tuple with insert-heavy churn (a fraction ``--churn`` of
  tuples is deleted and reinserted along the way, forcing tombstones
  and multiple sealed segments), then folded down with one
  :meth:`compact`.

Both legs then answer an identical calibrated workload under the
measurement protocol (fresh 100-frame pool per query).  Exactness
gates, asserted on *every* query:

* answers (tids, scores, presentation order) are identical;
* post-compaction measured reads are bit-identical — compaction
  restores exactly the static layout, so the mutability machinery can
  never silently change the cost model.

Outputs, under ``results_dir``:

* ``BENCH_abl_wal.json`` — insert/delete throughput, WAL append counts,
  compaction wall-clock, and the per-leg read totals;
* ``static/`` and ``incremental/`` — compare_io.py-compatible result
  dirs (both declare ``mode: "measure"``); CI diffs them so the read
  identity is also enforced by the standing tooling.
"""

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

from repro.bench.experiments import ExperimentScale, _dataset, _workload
from repro.core.kernels import kernel_mode
from repro.exec import ServingExecutor
from repro.invindex import ProbabilisticInvertedIndex
from repro.obs.trace import tracing_to_path
from repro.wal import WriteAheadLog

_SCALES = {
    "quick": ExperimentScale.quick,
    "default": ExperimentScale.default,
    "paper": ExperimentScale.paper,
}

DATASETS = ("uniform", "pairwise")
KINDS = ("threshold", "topk")
STRATEGY = "highest_prob_first"


def _answer_key(served):
    return [(match.tid, match.score) for match in served.result.matches]


def _point_queries(calibrated_queries, kind):
    return [
        cq.threshold_query() if kind == "threshold" else cq.top_k_query()
        for cq in calibrated_queries
    ]


def _series_point(x, served_list):
    n = len(served_list)
    tags = {}
    for served in served_list:
        for tag, count in served.reads_by_tag.items():
            tags[tag] = tags.get(tag, 0) + count
    return {
        "x": x,
        "mean_reads": sum(s.reads for s in served_list) / n,
        "num_queries": n,
        "mean_result_size": sum(len(s) for s in served_list) / n,
        "mean_reads_by_tag": {tag: count / n for tag, count in tags.items()},
    }


def _grow_incremental(relation, churn, wal_dir, dataset):
    """Insert every tuple through the WAL with interleaved churn.

    Returns (index, wal, timings) where timings carries the insert /
    delete counts and wall-clocks for the throughput report.
    """
    index = ProbabilisticInvertedIndex(len(relation.domain))
    wal = WriteAheadLog(Path(wal_dir) / f"{dataset}.wal", fsync=False)
    index.attach_wal(wal)
    inserts = deletes = 0
    started = time.perf_counter()
    churn_stride = max(2, int(1.0 / churn)) if churn > 0 else 0
    for tid in relation.tids():
        index.insert(tid, relation.uda_of(tid))
        inserts += 1
        if churn_stride and tid % churn_stride == 1:
            index.delete(tid)
            index.insert(tid, relation.uda_of(tid))
            deletes += 1
            inserts += 1
    grow_wall = time.perf_counter() - started
    started = time.perf_counter()
    index.compact()
    compact_wall = time.perf_counter() - started
    return index, wal, {
        "inserts": inserts,
        "deletes": deletes,
        "wal_records": wal.last_lsn,
        "grow_wall_seconds": round(grow_wall, 4),
        "insert_throughput_per_s": (
            round((inserts + deletes) / grow_wall, 1) if grow_wall > 0 else None
        ),
        "compact_wall_seconds": round(compact_wall, 4),
    }


def _run_workload(args, scale, wal_dir):
    """Measure both legs; returns (legs, series, violations)."""
    points = len(DATASETS) * len(KINDS) * len(scale.selectivities)
    qpp = -(-args.queries // points)  # ceil division
    legs = {
        "static": {"reads": 0, "posting_reads": 0},
        "incremental": {"reads": 0, "posting_reads": 0},
    }
    growth = {}
    series = {"static": {}, "incremental": {}}
    violations = []
    for dataset in DATASETS:
        key = (dataset, scale.synth_tuples, 0, scale.seed)
        relation = _dataset(*key)
        workload = _workload(key, scale.selectivities, qpp, scale.seed)

        static_index = ProbabilisticInvertedIndex(len(relation.domain))
        static_index.build(relation)
        grown_index, wal, timings = _grow_incremental(
            relation, args.churn, wal_dir, dataset
        )
        growth[dataset] = timings

        static_exec = ServingExecutor(
            static_index,
            strategy=STRATEGY,
            mode="measure",
            pool_size=scale.pool_size,
        )
        grown_exec = ServingExecutor(
            grown_index,
            strategy=STRATEGY,
            mode="measure",
            pool_size=scale.pool_size,
        )
        for kind in KINDS:
            series_name = f"{dataset}-{kind}"
            series["static"][series_name] = []
            series["incremental"][series_name] = []
            for selectivity, calibrated in workload.items():
                queries = _point_queries(calibrated, kind)
                static_served = [static_exec.execute(q) for q in queries]
                grown_served = [grown_exec.execute(q) for q in queries]
                series["static"][series_name].append(
                    _series_point(selectivity * 100.0, static_served)
                )
                series["incremental"][series_name].append(
                    _series_point(selectivity * 100.0, grown_served)
                )
                for position, (s, g) in enumerate(
                    zip(static_served, grown_served)
                ):
                    where = f"{series_name} @ {selectivity} query {position}"
                    if _answer_key(g) != _answer_key(s):
                        violations.append(f"answers diverge: {where}")
                    if g.reads != s.reads:
                        violations.append(
                            f"reads diverge: incremental {g.reads} != "
                            f"static {s.reads}: {where}"
                        )
                    legs["static"]["reads"] += s.reads
                    legs["incremental"]["reads"] += g.reads
                    legs["static"]["posting_reads"] += s.reads_by_tag.get(
                        "postings", 0
                    )
                    legs["incremental"]["posting_reads"] += g.reads_by_tag.get(
                        "postings", 0
                    )
        wal.close()
    legs["incremental"]["growth"] = growth
    return legs, series, violations


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Incremental (WAL + compaction) vs static-build ablation."
    )
    parser.add_argument(
        "results_dir",
        nargs="?",
        type=Path,
        default=Path("benchmarks/results/abl_wal"),
    )
    parser.add_argument("--scale", choices=sorted(_SCALES), default="quick")
    parser.add_argument(
        "--queries",
        type=int,
        default=120,
        help="minimum total workload size (default: 120)",
    )
    parser.add_argument(
        "--churn",
        type=float,
        default=0.25,
        help="fraction of tuples deleted and reinserted (default: 0.25)",
    )
    parser.add_argument(
        "--segment-tuples",
        type=int,
        default=64,
        help="mutable-segment seal threshold (default: 64)",
    )
    parser.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="PATH",
        help="write a schema-valid JSONL trace of the whole run",
    )
    args = parser.parse_args(argv)

    scale = _SCALES[args.scale]()
    points = len(DATASETS) * len(KINDS) * len(scale.selectivities)
    qpp = -(-args.queries // points)
    os.environ["REPRO_SEGMENT_TUPLES"] = str(args.segment_tuples)
    print(
        f"scale={args.scale} kernel={kernel_mode()} "
        f"queries={points * qpp} ({points} points x {qpp}) "
        f"churn={args.churn} segment_tuples={args.segment_tuples}"
    )

    with tempfile.TemporaryDirectory(prefix="abl-wal-") as wal_dir:
        if args.trace is not None:
            with tracing_to_path(args.trace):
                legs, series, violations = _run_workload(args, scale, wal_dir)
            print(f"trace written to {args.trace}")
        else:
            legs, series, violations = _run_workload(args, scale, wal_dir)

    for dataset, timings in legs["incremental"]["growth"].items():
        print(
            f"{dataset}: {timings['inserts']} inserts "
            f"{timings['deletes']} deletes "
            f"({timings['insert_throughput_per_s']} mut/s)  "
            f"compact={timings['compact_wall_seconds']}s "
            f"wal_records={timings['wal_records']}"
        )
    print(
        f"static reads={legs['static']['reads']} "
        f"incremental reads={legs['incremental']['reads']}"
    )
    if violations:
        for violation in violations[:20]:
            print(f"VIOLATION: {violation}", file=sys.stderr)
        print(
            f"FAIL: {len(violations)} exactness violations", file=sys.stderr
        )
        return 1

    payload = {
        "config": {
            "scale": args.scale,
            "kernel": kernel_mode(),
            "strategy": STRATEGY,
            "pool_size": scale.pool_size,
            "datasets": list(DATASETS),
            "total_queries": points * qpp,
            "churn": args.churn,
            "segment_tuples": args.segment_tuples,
        },
        "legs": legs,
        "violations": 0,
    }
    results_dir = args.results_dir
    results_dir.mkdir(parents=True, exist_ok=True)
    (results_dir / "BENCH_abl_wal.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    summary = {"kernel": kernel_mode(), "batch": 1, "mode": "measure"}
    for leg in ("static", "incremental"):
        leg_dir = results_dir / leg
        leg_dir.mkdir(parents=True, exist_ok=True)
        (leg_dir / "BENCH_abl_wal_points.json").write_text(
            json.dumps({"series": series[leg]}, indent=2) + "\n"
        )
        (leg_dir / "BENCH_summary.json").write_text(
            json.dumps(summary, indent=2) + "\n"
        )
    print(f"results under {results_dir}/ (static/ and incremental/)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
