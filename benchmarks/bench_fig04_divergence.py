"""Figure 4 — L1 vs L2 vs KL as the PDR-tree clustering measure (CRM1).

Paper shape: at low selectivity KL beats L1 beats L2; top-k costs a
roughly constant factor over threshold queries of equal selectivity.
"""

from repro.bench import figure4


def test_fig04_divergence(benchmark, scale, report):
    result = benchmark.pedantic(figure4, args=(scale,), iterations=1, rounds=1)
    report(result, benchmark)
    assert set(result.series) == {
        f"CRM1-{d}-{kind}"
        for d in ("L1", "L2", "KL")
        for kind in ("Thres", "TopK")
    }
    # Top-k explores at least as much as the equally selective threshold
    # query, for every divergence (the paper's "constant factor" remark).
    for divergence in ("L1", "L2", "KL"):
        threshold = result.series_values(f"CRM1-{divergence}-Thres")
        topk = result.series_values(f"CRM1-{divergence}-TopK")
        assert all(t >= s * 0.95 for s, t in zip(threshold, topk))
