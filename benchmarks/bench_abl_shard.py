#!/usr/bin/env python
"""Ablation: scatter-gather sharding with distributed-τ propagation.

Usage::

    python benchmarks/bench_abl_shard.py [results_dir]
        [--quick] [--tuples N] [--queries-per-point N]
        [--shards S [S ...]] [--assert-speedup S] [--trace PATH]

Runs a fixed top-k workload (synthetic uniform + zipf datasets, the
quick scale's lowest selectivity) four ways per shard count:

* **single** — the paper's single-node protocol via
  :func:`repro.bench.harness.measure_query` (fresh 100-frame pool per
  query).  This is the baseline every gate compares against;
* **shards=1** — the same queries through
  :class:`repro.shard.ShardCoordinator` over one shard.  Must be
  *bit-identical* to single (answers, scores, tie order, total and
  posting reads) — the differential suite's claim, re-asserted here on
  the benchmark workload and exported as a compare_io-checkable dir;
* **tau** (``fanout=1``) — the distributed-τ leg: shards probed one
  round at a time, each round's probes carrying the coordinator's
  current global k-th score as their ``tau_floor``;
* **noprop** (``fanout=shards``) — one floorless round, the
  no-propagation control.

Gates (exit 1 on violation):

* every leg's answers (tids, scores, order) equal single's, at every
  shard count — sharding is a protocol change, never a semantics
  change;
* shards=1 total reads and posting reads equal single's exactly;
* **aggregate reads**: the tau leg's summed physical reads across
  shards never exceed the single-node run's.  Each shard verifies only
  its own slice against its own pool, so the aggregate avoids the
  random-access thrashing a single 100-frame pool pays on the full
  relation — this is the sharding win the paper's cost metric sees;
* **per-shard posting reads**: no single shard in the tau leg reads
  more posting pages than the single-node run — Lemma-1 stops fire
  against the global floor, so a shard's scan depth is bounded by the
  single-node scan of the same bound curve;
* **propagation**: the tau leg's aggregate posting reads never exceed
  the noprop leg's, and beat it strictly at the largest shard count —
  the floor must pay for its rounds.

Wall-clock is *reported*, not gated by default: the single-node wall
against the tau leg over :class:`~repro.shard.ProcessTransport`
(per-shard worker processes probed concurrently) at the largest shard
count.  ``--assert-speedup S`` turns the report into a gate.

Outputs, under ``results_dir``:

* ``BENCH_abl_shard.json`` — per-(dataset, strategy, shard-count) read
  totals, gate verdicts, and the wall-clock section;
* ``measure_single/`` and ``measure_shards1/`` — compare_io.py result
  dirs from the single-node and shards=1 legs; CI diffs them to pin
  the bit-identity claim through the public tooling (both declare
  ``shards: 1`` in their summaries).
"""

import argparse
import json
import sys
import time
from pathlib import Path

from repro.bench.experiments import ExperimentScale, _dataset, _workload
from repro.bench.harness import IndexUnderTest, measure_query
from repro.core.kernels import kernel_mode
from repro.invindex.index import ProbabilisticInvertedIndex
from repro.obs.trace import tracing_to_path
from repro.shard import (
    LocalTransport,
    ProcessTransport,
    ShardCoordinator,
    ShardedIndex,
)

#: Synthetic dataset kinds.  The relation must outsize the measurement
#: pool (100 frames) for the aggregate-reads gate to be interesting —
#: at the default 20000 tuples the single-node verifier thrashes its
#: pool while every shard's slice fits comfortably.
DATASETS = ("uniform", "zipf1.2")

#: Inverted-index strategies under test: the whole-list pruner and the
#: sorted-access scanner — the two Lemma-1 disciplines tau_floor
#: accelerates differently (list skips vs shallower scans).
STRATEGIES = ("row_pruning", "highest_prob_first")

DEFAULT_SHARDS = (1, 2, 4, 8)
DEFAULT_TUPLES = 20000


def _answers(matches):
    return [(m.tid, m.score) for m in matches]


def _run_coordinator(coordinator, queries):
    """Execute ``queries``; return (leg dict, per-query answers)."""
    reads = postings = rounds = 0
    max_shard_postings = 0
    answers = []
    points = []
    started = time.perf_counter()
    for query in queries:
        sharded = coordinator.execute(query)
        reads += sharded.reads
        postings += sharded.reads_by_tag.get("postings", 0)
        rounds += sharded.rounds
        max_shard_postings = max(
            max_shard_postings,
            max(
                p["reads_by_tag"].get("postings", 0)
                for p in sharded.per_shard
            ),
        )
        answers.append(_answers(sharded.matches))
        points.append(sharded)
    wall = time.perf_counter() - started
    leg = {
        "reads": reads,
        "posting_reads": postings,
        "max_shard_posting_reads": max_shard_postings,
        "rounds": rounds,
        "wall_clock_seconds": round(wall, 4),
    }
    return leg, answers, points


def _series_point(x, reads_list, tags_list, sizes):
    n = len(reads_list)
    tags = {}
    for per_query in tags_list:
        for tag, count in per_query.items():
            tags[tag] = tags.get(tag, 0) + count
    return {
        "x": x,
        "mean_reads": sum(reads_list) / n,
        "num_queries": n,
        "mean_result_size": sum(sizes) / n,
        "mean_reads_by_tag": {tag: count / n for tag, count in tags.items()},
    }


def _write_measure_dir(directory, series, backend_keys):
    directory.mkdir(parents=True, exist_ok=True)
    (directory / "BENCH_abl_shard_points.json").write_text(
        json.dumps({"series": series}, indent=2) + "\n"
    )
    summary = {
        "kernel": kernel_mode(),
        "batch": 1,
        "mode": "measure",
        "shards": 1,
        "transport": "local",
    }
    summary.update(backend_keys)
    (directory / "BENCH_summary.json").write_text(
        json.dumps(summary, indent=2) + "\n"
    )


def _run(args, scale):
    selectivity = min(scale.selectivities)
    shard_counts = sorted(set(args.shards))
    max_shards = max(shard_counts)
    violations = []
    rows = []
    single_series = {}
    shards1_series = {}
    wall_report = []

    for dataset in DATASETS:
        key = (dataset, args.tuples, 0, scale.seed)
        relation = _dataset(dataset, args.tuples, 0, scale.seed)
        workload = _workload(key, (selectivity,), args.queries_per_point,
                             scale.seed)
        queries = [
            cq.top_k_query()
            for calibrated in workload.values()
            for cq in calibrated
        ]
        for strategy in STRATEGIES:
            label = f"{dataset}-{strategy}"
            single_index = ProbabilisticInvertedIndex(len(relation.domain))
            single_index.build(relation)
            under = IndexUnderTest(label, single_index, strategy=strategy)

            single_reads, single_tags, single_sizes = [], [], []
            single_answers = []
            started = time.perf_counter()
            for query in queries:
                measured = measure_query(under, query, scale.pool_size)
                single_reads.append(measured.reads)
                single_tags.append(dict(measured.reads_by_tag))
                single_sizes.append(measured.result_size)
                single_answers.append(
                    _answers(single_index.execute(query, strategy=strategy).matches)
                )
            single_wall = time.perf_counter() - started
            single = {
                "reads": sum(single_reads),
                "posting_reads": sum(
                    tags.get("postings", 0) for tags in single_tags
                ),
                "wall_clock_seconds": round(single_wall, 4),
            }
            single_series[label] = [
                _series_point(
                    selectivity * 100.0, single_reads, single_tags,
                    single_sizes,
                )
            ]

            for num_shards in shard_counts:
                sharded = ShardedIndex.build(
                    relation, num_shards, strategy=strategy
                )
                transport = LocalTransport(sharded, pool_size=scale.pool_size)
                tau_leg, tau_answers, tau_points = _run_coordinator(
                    ShardCoordinator(transport, fanout=1), queries
                )
                noprop_leg, noprop_answers, _ = _run_coordinator(
                    ShardCoordinator(transport, fanout=num_shards), queries
                )
                where = f"{label} shards={num_shards}"
                if tau_answers != single_answers:
                    violations.append(f"tau answers diverge: {where}")
                if noprop_answers != single_answers:
                    violations.append(f"noprop answers diverge: {where}")
                if num_shards == 1:
                    if tau_leg["reads"] != single["reads"]:
                        violations.append(
                            f"shards=1 reads {tau_leg['reads']} != "
                            f"single {single['reads']}: {where}"
                        )
                    if tau_leg["posting_reads"] != single["posting_reads"]:
                        violations.append(
                            f"shards=1 posting reads "
                            f"{tau_leg['posting_reads']} != single "
                            f"{single['posting_reads']}: {where}"
                        )
                    shards1_series[label] = [
                        _series_point(
                            selectivity * 100.0,
                            [p.reads for p in tau_points],
                            [dict(p.reads_by_tag) for p in tau_points],
                            [len(p) for p in tau_points],
                        )
                    ]
                else:
                    if tau_leg["reads"] > single["reads"]:
                        violations.append(
                            f"aggregate reads {tau_leg['reads']} > "
                            f"single-node {single['reads']}: {where}"
                        )
                    if (
                        tau_leg["max_shard_posting_reads"]
                        > single["posting_reads"]
                    ):
                        violations.append(
                            f"a shard read "
                            f"{tau_leg['max_shard_posting_reads']} posting "
                            f"pages > single-node "
                            f"{single['posting_reads']}: {where}"
                        )
                    if tau_leg["posting_reads"] > noprop_leg["posting_reads"]:
                        violations.append(
                            f"tau posting reads {tau_leg['posting_reads']} > "
                            f"noprop {noprop_leg['posting_reads']}: {where}"
                        )
                rows.append(
                    {
                        "dataset": dataset,
                        "strategy": strategy,
                        "shards": num_shards,
                        "single": single,
                        "tau": tau_leg,
                        "noprop": noprop_leg,
                    }
                )
                print(
                    f"{where}: single reads={single['reads']} "
                    f"post={single['posting_reads']} | "
                    f"tau reads={tau_leg['reads']} "
                    f"post={tau_leg['posting_reads']} "
                    f"maxshard={tau_leg['max_shard_posting_reads']} | "
                    f"noprop post={noprop_leg['posting_reads']}"
                )

            if not args.skip_process:
                # Wall-clock leg: the same tau protocol over per-shard
                # worker processes, probed concurrently.
                transport = ProcessTransport.from_sharded_index(
                    ShardedIndex.build(relation, max_shards,
                                       strategy=strategy),
                    pool_size=scale.pool_size,
                )
                try:
                    process_leg, process_answers, _ = _run_coordinator(
                        ShardCoordinator(transport, fanout=1), queries
                    )
                finally:
                    transport.close()
                if process_answers != single_answers:
                    violations.append(
                        f"process-transport answers diverge: {label}"
                    )
                speedup = (
                    round(
                        single["wall_clock_seconds"]
                        / process_leg["wall_clock_seconds"],
                        3,
                    )
                    if process_leg["wall_clock_seconds"] > 0
                    else None
                )
                wall_report.append(
                    {
                        "dataset": dataset,
                        "strategy": strategy,
                        "shards": max_shards,
                        "transport": "process",
                        "single_wall_clock_seconds":
                            single["wall_clock_seconds"],
                        "tau_wall_clock_seconds":
                            process_leg["wall_clock_seconds"],
                        "speedup": speedup,
                    }
                )
                print(
                    f"{label} process shards={max_shards}: "
                    f"single={single['wall_clock_seconds']:.3f}s "
                    f"tau={process_leg['wall_clock_seconds']:.3f}s "
                    f"speedup={speedup}x"
                )
    # Propagation must beat its control in aggregate at the largest
    # shard count (per-config it may tie when a floor round skips
    # nothing — e.g. a floor landing between two page boundaries).
    if max_shards > 1:
        tau_total = sum(
            row["tau"]["posting_reads"]
            for row in rows
            if row["shards"] == max_shards
        )
        noprop_total = sum(
            row["noprop"]["posting_reads"]
            for row in rows
            if row["shards"] == max_shards
        )
        if tau_total >= noprop_total:
            violations.append(
                f"aggregate tau posting reads {tau_total} not strictly "
                f"below noprop {noprop_total} at shards={max_shards}"
            )
    return rows, wall_report, single_series, shards1_series, violations


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Scatter-gather sharding ablation."
    )
    parser.add_argument(
        "results_dir",
        nargs="?",
        type=Path,
        default=Path("benchmarks/results/abl_shard"),
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="halve the workload (2 queries per point, shards 1/2/4, "
        "skip the process-transport wall-clock leg)",
    )
    parser.add_argument("--tuples", type=int, default=DEFAULT_TUPLES)
    parser.add_argument("--queries-per-point", type=int, default=3)
    parser.add_argument(
        "--shards", type=int, nargs="+", default=list(DEFAULT_SHARDS)
    )
    parser.add_argument(
        "--skip-process",
        action="store_true",
        help="skip the process-transport wall-clock leg",
    )
    parser.add_argument(
        "--assert-speedup",
        type=float,
        default=None,
        metavar="S",
        help="fail unless every process-transport leg is >= S x single",
    )
    parser.add_argument("--trace", type=Path, default=None, metavar="PATH")
    args = parser.parse_args(argv)
    if args.quick:
        args.queries_per_point = min(args.queries_per_point, 2)
        args.shards = [s for s in args.shards if s <= 4] or [1, 2, 4]
        args.skip_process = True
    if 1 not in args.shards:
        args.shards.append(1)

    scale = ExperimentScale.quick()
    print(
        f"kernel={kernel_mode()} tuples={args.tuples} "
        f"shards={sorted(set(args.shards))} "
        f"queries_per_point={args.queries_per_point}"
    )
    if args.trace is not None:
        with tracing_to_path(args.trace):
            rows, wall, single_series, shards1_series, violations = _run(
                args, scale
            )
        print(f"trace written to {args.trace}")
    else:
        rows, wall, single_series, shards1_series, violations = _run(
            args, scale
        )

    if violations:
        for violation in violations[:20]:
            print(f"VIOLATION: {violation}", file=sys.stderr)
        print(f"FAIL: {len(violations)} gate violations", file=sys.stderr)
        return 1

    payload = {
        "config": {
            "kernel": kernel_mode(),
            "datasets": list(DATASETS),
            "strategies": list(STRATEGIES),
            "tuples": args.tuples,
            "shards": sorted(set(args.shards)),
            "queries_per_point": args.queries_per_point,
            "pool_size": scale.pool_size,
        },
        "rows": rows,
        "wall_clock": wall,
        "violations": 0,
    }
    results_dir = args.results_dir
    results_dir.mkdir(parents=True, exist_ok=True)
    (results_dir / "BENCH_abl_shard.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    _write_measure_dir(results_dir / "measure_single", single_series, {})
    _write_measure_dir(results_dir / "measure_shards1", shards1_series, {})

    failures = []
    if args.assert_speedup is not None:
        for leg in wall:
            if leg["speedup"] is None or leg["speedup"] < args.assert_speedup:
                failures.append(
                    f"{leg['dataset']}-{leg['strategy']} speedup "
                    f"{leg['speedup']} < required {args.assert_speedup}"
                )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
