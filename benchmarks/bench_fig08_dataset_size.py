"""Figure 8 — scalability with dataset size (CRM2).

Paper shape: the inverted index scales linearly with the number of
tuples, the PDR-tree sub-linearly.
"""

from repro.bench import figure8


def test_fig08_dataset_size(benchmark, scale, report):
    result = benchmark.pedantic(figure8, args=(scale,), iterations=1, rounds=1)
    report(result, benchmark)
    inv = result.series_values("CRM2-Inv-Thres")
    pdr = result.series_values("CRM2-PDR-Thres")
    # The inverted index grows with dataset size and the PDR-tree stays
    # well below it at the largest size.
    assert inv[-1] > inv[0]
    assert pdr[-1] < inv[-1]
