"""Figure 10 — top-down vs bottom-up PDR-tree splits (Uniform).

Paper shape: bottom-up beats top-down, whose farthest-pair seeds are
vulnerable to outliers.
"""

from repro.bench import figure10


def test_fig10_split(benchmark, scale, report):
    result = benchmark.pedantic(figure10, args=(scale,), iterations=1, rounds=1)
    report(result, benchmark)
    assert set(result.series) == {
        "Uniform-TopDown-Thres",
        "Uniform-BottomUp-Thres",
    }
