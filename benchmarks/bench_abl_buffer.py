"""Ablation A4 — buffer-pool size sensitivity (CRM2).

Beyond the paper: Section 4 fixes a 100-block clock buffer per query;
this bench sweeps the allocation to show how much of each structure's
cost is re-read traffic.
"""

from repro.bench import ablation_buffer


def test_abl_buffer(benchmark, scale, report):
    result = benchmark.pedantic(
        ablation_buffer, args=(scale,), iterations=1, rounds=1
    )
    report(result, benchmark)
    inv = result.series_values("CRM2-Inv-Thres")
    # More buffer never hurts the inverted index's re-read traffic.
    assert inv[-1] <= inv[0]
