#!/usr/bin/env python
"""Ablation: serving-mode execution vs the per-query measurement protocol.

Usage::

    python benchmarks/bench_abl_serving.py [results_dir]
        [--scale quick|default|paper] [--queries N] [--coalesce N]
        [--assert-speedup S] [--assert-io-savings F] [--trace PATH]

Runs a Figure 5-style synthetic workload (uniform + pairwise datasets,
PETQ and top-k kinds over the scale's selectivities, >= ``--queries``
queries total) through the inverted index three ways:

* **cold** — ``mode="measure"``: the paper's protocol, a fresh
  100-frame buffer pool per query.  This is the baseline and the leg
  whose per-point reads are written compare_io.py-compatibly;
* **warm** — ``mode="serve"``: one long-lived shared pool per dataset
  (:class:`repro.exec.ServingExecutor`), requests executed one at a
  time as a server would between coalescing windows;
* **coalesced** — ``mode="serve"`` plus request coalescing: the same
  warm pool, requests grouped ``--coalesce`` at a time through the
  batch executor (what the server does under concurrent load).

Exactness gates, asserted on *every* query:

* warm and coalesced answers (tids, scores, order) are identical to
  the cold answers — serving is an execution-protocol change, never a
  semantics change;
* warm per-request reads (total and posting pages) never exceed the
  cold reads for the same query — a warm fetch misses only if the same
  cold fetch would have missed.

Outputs, under ``results_dir``:

* ``BENCH_abl_serving.json`` — wall-clock, throughput, reads, and
  speedups/savings per leg;
* ``measure/`` — a compare_io.py-compatible result dir from the cold
  leg (``mode: "measure"`` declared in its summary), which CI diffs to
  pin serving work to zero measurement drift.

``--assert-speedup S`` fails the run unless the warm leg is at least
``S``x the cold throughput; ``--assert-io-savings F`` fails unless the
warm leg saves at least fraction ``F`` of posting-page reads.
"""

import argparse
import json
import sys
import time
from pathlib import Path

from repro.bench.experiments import ExperimentScale, _inverted, _workload
from repro.core.kernels import kernel_mode
from repro.exec import ServingExecutor
from repro.obs.trace import tracing_to_path

_SCALES = {
    "quick": ExperimentScale.quick,
    "default": ExperimentScale.default,
    "paper": ExperimentScale.paper,
}

#: Fig-5 synthetic dataset kinds.
DATASETS = ("uniform", "pairwise")

#: Query kinds per point.
KINDS = ("threshold", "topk")

#: Inverted-index strategy under test (fig5's).
STRATEGY = "highest_prob_first"


def _answer_key(served):
    return [(match.tid, match.score) for match in served.result.matches]


def _point_queries(calibrated_queries, kind):
    return [
        cq.threshold_query() if kind == "threshold" else cq.top_k_query()
        for cq in calibrated_queries
    ]


def _series_point(x, served_list):
    n = len(served_list)
    tags = {}
    for served in served_list:
        for tag, count in served.reads_by_tag.items():
            tags[tag] = tags.get(tag, 0) + count
    return {
        "x": x,
        "mean_reads": sum(s.reads for s in served_list) / n,
        "num_queries": n,
        "mean_result_size": sum(len(s) for s in served_list) / n,
        "mean_reads_by_tag": {tag: count / n for tag, count in tags.items()},
    }


def _leg_totals(served_by_point, wall):
    total = sum(len(point) for point in served_by_point)
    return {
        "wall_clock_seconds": round(wall, 4),
        "throughput_qps": round(total / wall, 1) if wall > 0 else None,
        "reads": sum(s.reads for point in served_by_point for s in point),
        "posting_reads": sum(
            s.reads_by_tag.get("postings", 0)
            for point in served_by_point
            for s in point
        ),
    }


def _run_workload(args, scale):
    """Execute all three legs; returns (legs, cold_series, violations)."""
    points = len(DATASETS) * len(KINDS) * len(scale.selectivities)
    qpp = -(-args.queries // points)  # ceil division
    cold_points, warm_points, coalesced_points = [], [], []
    cold_wall = warm_wall = coalesced_wall = 0.0
    cold_series = {}
    violations = []
    for dataset in DATASETS:
        key = (dataset, scale.synth_tuples, 0, scale.seed)
        index = _inverted(key)
        workload = _workload(key, scale.selectivities, qpp, scale.seed)
        cold_exec = ServingExecutor(
            index,
            strategy=STRATEGY,
            mode="measure",
            pool_size=scale.pool_size,
        )
        # One warm pool per dataset, shared across every point below —
        # exactly a server's lifetime over this index.
        warm_exec = ServingExecutor(index, strategy=STRATEGY, mode="serve")
        coalesced_exec = ServingExecutor(
            index, strategy=STRATEGY, mode="serve"
        )
        for kind in KINDS:
            series_name = f"{dataset}-{kind}"
            cold_series[series_name] = []
            for selectivity, calibrated in workload.items():
                queries = _point_queries(calibrated, kind)

                started = time.perf_counter()
                cold = [cold_exec.execute(q) for q in queries]
                cold_wall += time.perf_counter() - started
                cold_points.append(cold)
                cold_series[series_name].append(
                    _series_point(selectivity * 100.0, cold)
                )

                started = time.perf_counter()
                warm = [warm_exec.execute(q) for q in queries]
                warm_wall += time.perf_counter() - started
                warm_points.append(warm)

                started = time.perf_counter()
                coalesced = []
                for base in range(0, len(queries), args.coalesce):
                    coalesced.extend(
                        coalesced_exec.execute_batch(
                            queries[base:base + args.coalesce]
                        )
                    )
                coalesced_wall += time.perf_counter() - started
                coalesced_points.append(coalesced)

                for position, (c, w, g) in enumerate(
                    zip(cold, warm, coalesced)
                ):
                    where = f"{series_name} @ {selectivity} query {position}"
                    if _answer_key(w) != _answer_key(c):
                        violations.append(f"warm answers diverge: {where}")
                    if _answer_key(g) != _answer_key(c):
                        violations.append(
                            f"coalesced answers diverge: {where}"
                        )
                    if w.reads > c.reads:
                        violations.append(
                            f"warm reads {w.reads} > cold {c.reads}: {where}"
                        )
                    warm_postings = w.reads_by_tag.get("postings", 0)
                    cold_postings = c.reads_by_tag.get("postings", 0)
                    if warm_postings > cold_postings:
                        violations.append(
                            f"warm posting reads {warm_postings} > cold "
                            f"{cold_postings}: {where}"
                        )
        warm_exec.check_quiesced()
        coalesced_exec.check_quiesced()
    legs = {
        "cold": _leg_totals(cold_points, cold_wall),
        "warm": _leg_totals(warm_points, warm_wall),
        "coalesced": _leg_totals(coalesced_points, coalesced_wall),
    }
    return legs, cold_series, violations


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Serving-mode vs measurement-protocol ablation."
    )
    parser.add_argument(
        "results_dir",
        nargs="?",
        type=Path,
        default=Path("benchmarks/results/abl_serving"),
    )
    parser.add_argument("--scale", choices=sorted(_SCALES), default="quick")
    parser.add_argument(
        "--queries",
        type=int,
        default=200,
        help="minimum total workload size (default: 200)",
    )
    parser.add_argument(
        "--coalesce",
        type=int,
        default=16,
        help="coalesced-leg batch size (default: 16)",
    )
    parser.add_argument(
        "--assert-speedup",
        type=float,
        default=None,
        metavar="S",
        help="fail unless warm throughput is >= S x cold",
    )
    parser.add_argument(
        "--assert-io-savings",
        type=float,
        default=None,
        metavar="F",
        help="fail unless warm saves >= fraction F of posting reads",
    )
    parser.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="PATH",
        help="write a schema-valid JSONL trace of the whole run",
    )
    args = parser.parse_args(argv)

    scale = _SCALES[args.scale]()
    points = len(DATASETS) * len(KINDS) * len(scale.selectivities)
    qpp = -(-args.queries // points)
    print(
        f"scale={args.scale} kernel={kernel_mode()} "
        f"queries={points * qpp} ({points} points x {qpp}) "
        f"coalesce={args.coalesce}"
    )

    if args.trace is not None:
        with tracing_to_path(args.trace):
            legs, cold_series, violations = _run_workload(args, scale)
        print(f"trace written to {args.trace}")
    else:
        legs, cold_series, violations = _run_workload(args, scale)

    cold = legs["cold"]
    for name in ("warm", "coalesced"):
        leg = legs[name]
        leg["speedup"] = (
            round(cold["wall_clock_seconds"] / leg["wall_clock_seconds"], 3)
            if leg["wall_clock_seconds"] > 0
            else None
        )
        leg["read_savings"] = (
            round(1.0 - leg["reads"] / cold["reads"], 4)
            if cold["reads"]
            else 0.0
        )
        leg["posting_read_savings"] = (
            round(1.0 - leg["posting_reads"] / cold["posting_reads"], 4)
            if cold["posting_reads"]
            else 0.0
        )
    for name, leg in legs.items():
        line = (
            f"{name:9s}: wall={leg['wall_clock_seconds']:.3f}s "
            f"({leg['throughput_qps']} q/s)  reads={leg['reads']} "
            f"posting_reads={leg['posting_reads']}"
        )
        if "speedup" in leg:
            line += (
                f"  speedup={leg['speedup']}x "
                f"posting_savings={leg['posting_read_savings']:.1%}"
            )
        print(line)
    if violations:
        for violation in violations[:20]:
            print(f"VIOLATION: {violation}", file=sys.stderr)
        print(
            f"FAIL: {len(violations)} exactness violations", file=sys.stderr
        )
        return 1

    payload = {
        "config": {
            "scale": args.scale,
            "kernel": kernel_mode(),
            "strategy": STRATEGY,
            "pool_size": scale.pool_size,
            "datasets": list(DATASETS),
            "total_queries": points * qpp,
            "coalesce": args.coalesce,
        },
        "legs": legs,
        "violations": 0,
    }
    results_dir = args.results_dir
    results_dir.mkdir(parents=True, exist_ok=True)
    (results_dir / "BENCH_abl_serving.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    measure_dir = results_dir / "measure"
    measure_dir.mkdir(parents=True, exist_ok=True)
    (measure_dir / "BENCH_abl_serving_points.json").write_text(
        json.dumps({"series": cold_series}, indent=2) + "\n"
    )
    (measure_dir / "BENCH_summary.json").write_text(
        json.dumps(
            {"kernel": kernel_mode(), "batch": 1, "mode": "measure"},
            indent=2,
        )
        + "\n"
    )

    failures = []
    warm = legs["warm"]
    if args.assert_speedup is not None and (
        warm["speedup"] is None or warm["speedup"] < args.assert_speedup
    ):
        failures.append(
            f"warm speedup {warm['speedup']} < required {args.assert_speedup}"
        )
    if (
        args.assert_io_savings is not None
        and warm["posting_read_savings"] < args.assert_io_savings
    ):
        failures.append(
            f"warm posting-read savings {warm['posting_read_savings']:.1%} "
            f"< required {args.assert_io_savings:.1%}"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
