"""Figure 6 — inverted index vs PDR-tree on CRM1 (sparse real-style data).

Paper shape: the PDR-tree significantly outperforms the inverted index;
compare against Figure 7 for the ~10x CRM1-vs-CRM2 cost gap.
"""

from repro.bench import figure6


def test_fig06_crm1(benchmark, scale, report):
    result = benchmark.pedantic(figure6, args=(scale,), iterations=1, rounds=1)
    report(result, benchmark)
    inv = result.series_values("CRM1-Inv-Thres")
    pdr = result.series_values("CRM1-PDR-Thres")
    # The PDR-tree wins at the low-selectivity end (the paper's regime of
    # interest; at 10% both structures approach a full sweep).
    assert pdr[0] < inv[0]
