"""Ablation A3 — PDR-tree insert policies (CRM1).

Beyond the paper: Section 3.2 lists minimum-area-increase and
most-similar-MBR "or [a] combination of these" without measuring them;
this bench compares all three.
"""

from repro.bench import ablation_insert_policy


def test_abl_insert_policy(benchmark, scale, report):
    result = benchmark.pedantic(
        ablation_insert_policy, args=(scale,), iterations=1, rounds=1
    )
    report(result, benchmark)
    assert set(result.series) == {
        "CRM1-min_area-Thres",
        "CRM1-most_similar-Thres",
        "CRM1-hybrid-Thres",
    }
