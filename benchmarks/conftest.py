"""Shared fixtures for the benchmark suite.

Each benchmark regenerates one figure of the paper (or one ablation) at
the scale selected by ``REPRO_SCALE`` (quick / default / paper; see
:class:`repro.bench.ExperimentScale`).  The rendered series table is
printed (run pytest with ``-s`` to see it inline) and saved under
``benchmarks/results/`` for inclusion in EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench import ExperimentResult, ExperimentScale, format_result

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    """The experiment scale for this benchmark session."""
    return ExperimentScale.from_env()


@pytest.fixture()
def report(request):
    """Print an experiment's table and persist it under results/."""

    def _report(result: ExperimentResult, benchmark=None) -> ExperimentResult:
        table = format_result(result)
        print()
        print(table)
        RESULTS_DIR.mkdir(exist_ok=True)
        stem = request.node.name.removeprefix("test_")
        (RESULTS_DIR / f"{stem}.txt").write_text(table + "\n")
        if benchmark is not None:
            for name in sorted(result.series):
                values = result.series_values(name)
                benchmark.extra_info[name] = [round(v, 1) for v in values]
        return result

    return _report
