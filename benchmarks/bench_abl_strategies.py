"""Ablation A1 — the five inverted-index search strategies (CRM1).

Beyond the paper: Section 3.1 describes four search algorithms plus the
no-random-access variant but never compares them head-to-head; this
bench does.
"""

from repro.bench import ablation_strategies


def test_abl_strategies(benchmark, scale, report):
    result = benchmark.pedantic(
        ablation_strategies, args=(scale,), iterations=1, rounds=1
    )
    report(result, benchmark)
    names = {name.split("-")[0] for name in result.series}
    assert names == {"Brute", "HPF", "Row", "Col", "NRA"}
