"""Legacy setuptools shim.

The execution environment has no ``wheel`` package, so PEP 660 editable
installs fail; this shim lets ``pip install -e . --no-use-pep517`` (and
plain ``pip install -e .`` without a ``[build-system]`` table) use the
legacy ``setup.py develop`` path.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
